//! Evaluation metrics for time-series anomaly detection.
//!
//! The paper's central methodological claim is that metric choice decides
//! what "state of the art" means. This crate implements the whole ladder it
//! discusses:
//!
//! * [`pointwise`] — plain point-wise precision / recall / F1 (`F1(PW)`).
//! * [`pa`] — the ill-posed *point adjustment* protocol (`F1(PA)`): an entire
//!   ground-truth segment counts as detected if any one of its points is
//!   flagged. Implemented faithfully so Table II's inflation is reproducible.
//! * [`pak`] — `PA%K` (Kim et al. 2022): adjustment only when more than K% of
//!   a segment is flagged, swept over K = 1..100 and summarised by the area
//!   under the curve (`F1(PA%K)` AUC, plus precision/recall AUCs).
//! * [`affiliation`] — the affiliation precision/recall of Huet et al.
//!   (KDD 2022): event-wise, distance-based, with per-event affiliation zones.
//! * [`eventwise`] — the MERLIN++ protocol of Table IV: an event counts as
//!   detected if a prediction lands within ±100 points of it.
//! * [`threshold`] — score-to-label conversion helpers (best-F1 sweep and
//!   quantile thresholds) used to evaluate continuous anomaly scores.
//!
//! Two extensions beyond the paper's protocol round out the ladder:
//! [`range_pr`] (Tatbul et al.'s range-based precision/recall) and [`auc`]
//! (threshold-free ROC-AUC / average precision over raw scores).

#![forbid(unsafe_code)]

pub mod affiliation;
pub mod auc;
pub mod eventwise;
pub mod pa;
pub mod pak;
pub mod pointwise;
pub mod range_pr;
pub mod threshold;

/// Precision / recall / F1 triple.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Prf {
    pub precision: f64,
    pub recall: f64,
    pub f1: f64,
}

impl Prf {
    /// Build from counts; empty denominators yield zeros (the convention the
    /// TSAD literature uses for degenerate splits).
    pub fn from_counts(tp: usize, fp: usize, fn_: usize) -> Prf {
        let precision = if tp + fp > 0 {
            tp as f64 / (tp + fp) as f64
        } else {
            0.0
        };
        let recall = if tp + fn_ > 0 {
            tp as f64 / (tp + fn_) as f64
        } else {
            0.0
        };
        Prf {
            precision,
            recall,
            f1: harmonic(precision, recall),
        }
    }
}

/// Harmonic mean with the 0/0 → 0 convention.
pub fn harmonic(p: f64, r: f64) -> f64 {
    if p + r > 0.0 {
        2.0 * p * r / (p + r)
    } else {
        0.0
    }
}

/// Contiguous `true` runs of a label vector as half-open ranges — the
/// "anomaly segments" all segment-aware metrics operate on.
pub fn segments(labels: &[bool]) -> Vec<std::ops::Range<usize>> {
    let mut out = Vec::new();
    let mut start = None;
    for (i, &l) in labels.iter().enumerate() {
        match (l, start) {
            (true, None) => start = Some(i),
            (false, Some(s)) => {
                out.push(s..i);
                start = None;
            }
            _ => {}
        }
    }
    if let Some(s) = start {
        out.push(s..labels.len());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segments_finds_runs() {
        let l = [false, true, true, false, true, false, true];
        assert_eq!(segments(&l), vec![1..3, 4..5, 6..7]);
        assert_eq!(segments(&[true, true]), vec![0..2]);
        assert!(segments(&[false; 4]).is_empty());
        assert!(segments(&[]).is_empty());
    }

    #[test]
    fn prf_from_counts() {
        let p = Prf::from_counts(5, 5, 5);
        assert!((p.precision - 0.5).abs() < 1e-12);
        assert!((p.recall - 0.5).abs() < 1e-12);
        assert!((p.f1 - 0.5).abs() < 1e-12);
        let z = Prf::from_counts(0, 0, 0);
        assert_eq!((z.precision, z.recall, z.f1), (0.0, 0.0, 0.0));
    }

    #[test]
    fn harmonic_mean_conventions() {
        assert_eq!(harmonic(0.0, 0.0), 0.0);
        assert!((harmonic(1.0, 1.0) - 1.0).abs() < 1e-12);
        assert!((harmonic(1.0, 0.5) - 2.0 / 3.0).abs() < 1e-12);
    }
}
