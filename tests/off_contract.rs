//! Off-contract robustness: TriAD assumes a single anomalous event per test
//! split (the UCR contract). These tests document how the pipeline behaves
//! when that assumption breaks — multi-event and clean test splits from
//! `ucrgen::stress` — and that the `merlin_top_k` extension covers the
//! multi-event case at the discord level.

use discord::merlin::{merlin_top_k, MerlinConfig};
use triad_core::{TriAd, TriadConfig};
use ucrgen::stress::{generate_stress, StressConfig};

fn quick_cfg() -> TriadConfig {
    TriadConfig {
        epochs: 4,
        depth: 3,
        hidden: 12,
        batch: 4,
        merlin_step: 4,
        ..Default::default()
    }
}

#[test]
fn multi_event_series_still_yields_one_useful_detection() {
    let data = generate_stress(2, &StressConfig::default());
    let fitted = TriAd::new(quick_cfg()).fit(data.train()).expect("fit");
    let det = fitted.detect(data.test());
    // TriAD nominates one region; it should cover at least one of the
    // events (it cannot cover all — that is the documented limitation).
    let w = fitted.window_len();
    let covered = data.events.iter().any(|ev| {
        let ev_test = ev.start - data.train_end..ev.end - data.train_end;
        evalkit::eventwise::event_detected(&det.selected_window, &ev_test, w)
    });
    assert!(covered, "selected window missed all events");
}

#[test]
fn clean_test_split_flags_little() {
    let cfg = StressConfig {
        events: 0,
        ..Default::default()
    };
    let data = generate_stress(4, &cfg);
    let fitted = TriAd::new(quick_cfg()).fit(data.train()).expect("fit");
    let det = fitted.detect(data.test());
    // With no anomaly, the pipeline still reports its most-deviant window
    // (by design), but the flagged mass must stay bounded by roughly the
    // search region — not spread over the series.
    let flagged = det.prediction.iter().filter(|&&b| b).count();
    assert!(
        flagged <= det.search_region.len(),
        "flagged {flagged} of {} points on clean data",
        det.prediction.len()
    );
}

#[test]
fn merlin_top_k_recovers_multiple_events() {
    let data = generate_stress(7, &StressConfig::default());
    let test = data.test();
    // Use a sweep around the typical event length.
    let sweep = MerlinConfig::new(20, 60).with_step(20);
    let per_length = merlin_top_k(test, sweep, data.events.len());
    assert!(!per_length.is_empty());
    // Count distinct events hit by any reported discord.
    let hit = data
        .events
        .iter()
        .filter(|ev| {
            let ev_test = ev.start - data.train_end..ev.end - data.train_end;
            per_length
                .iter()
                .flatten()
                .any(|d| evalkit::eventwise::event_detected(&d.range(), &ev_test, 100))
        })
        .count();
    assert!(
        hit >= 2,
        "top-k discords hit only {hit}/{} events",
        data.events.len()
    );
}
