//! Uniform-random scores — the sanity floor every serious detector must
//! clear (and, under F1(PA), embarrassingly often does not; see Table II's
//! discussion).

use crate::Detector;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub struct RandomDetector {
    pub seed: u64,
}

impl RandomDetector {
    pub fn new(seed: u64) -> Self {
        RandomDetector { seed }
    }
}

impl Detector for RandomDetector {
    fn name(&self) -> String {
        "Random".into()
    }

    fn score(&mut self, _train: &[f64], test: &[f64]) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        (0..test.len()).map(|_| rng.random::<f64>()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_determinism() {
        let test = vec![0.0; 100];
        let a = RandomDetector::new(3).score(&[], &test);
        let b = RandomDetector::new(3).score(&[], &test);
        assert_eq!(a.len(), 100);
        assert_eq!(a, b);
        let c = RandomDetector::new(4).score(&[], &test);
        assert_ne!(a, c);
    }

    #[test]
    fn scores_are_in_unit_interval() {
        let s = RandomDetector::new(0).score(&[], &vec![0.0; 1000]);
        assert!(s.iter().all(|&v| (0.0..1.0).contains(&v)));
    }
}
