//! Checkpoint / restore for [`StreamEngine`] state.
//!
//! Same hardening discipline as the `TRIAD2` model format in
//! `triad_core::persist` (whose CRC framing this reuses): magic, a small
//! `key=value` header, bounded length fields on every variable-size section,
//! and a whole-file CRC-32 trailer. Every float is written as raw IEEE-754
//! bits, so a restored engine continues **bit-identically** — the sliding
//! DFT, rolling moments, pairwise-similarity sums, and hysteresis state all
//! resume exactly where the checkpointed engine stopped.
//!
//! ```text
//! magic   b"TRIADS1\n"
//! u32     header length
//! header  UTF-8 "key=value" lines (model/stream names, shape, scalars)
//! ring    u64 len, f64-bits × len
//! sdft    u64 bins, (f64-bits re, f64-bits im) × bins
//! phase   u64 period, f64-bits sums × period, u64 counts × period
//! resid   u64 len, f64-bits × len
//! ranker  u64 domains, per domain { u64 rows, per row u32 len + f32-bits;
//!         u64 sums, f64-bits × sums }
//! starts  u64 len, u64 × len
//! events  u64 len, per event { u64 start, u8 has_end, u64 end, f64-bits peak }
//! u32     CRC-32 (IEEE) of every preceding byte, little-endian
//! ```
//!
//! Restore is two-phase: [`load`] parses and bounds-checks the file into a
//! [`CheckpointState`] (which names the model it was built with), then
//! [`CheckpointState::into_engine`] validates the state against the actual
//! fitted model before any of it touches code that asserts.

use crate::engine::{StreamConfig, StreamEngine, StreamEvent};
use crate::ring::RingBuffer;
use crate::StreamError;
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::path::Path;
use triad_core::persist::{read_exact_ctx, CrcReader, CrcWriter};
use triad_core::{FittedTriad, OnlineRanker, PersistError};
use tsops::fft::Complex;
use tsops::sliding::SlidingDft;

const MAGIC: &[u8; 8] = b"TRIADS1\n";

/// Longest accepted header, bytes.
const MAX_HEADER: usize = 1 << 16;
/// Longest accepted ring contents (2^26 samples = 512 MiB of f64s).
const MAX_RING: u64 = 1 << 26;
/// Most scored windows a checkpoint may carry.
const MAX_WINDOWS: u64 = 1 << 22;
/// Most hysteresis events a checkpoint may carry.
const MAX_EVENTS: u64 = 1 << 20;
/// Longest accepted embedding row.
const MAX_ROW: u32 = 1 << 16;
/// Most domains a checkpoint may carry (the paper uses 3).
const MAX_DOMAINS: u64 = 8;
/// Largest accepted period / tracked-bin count.
const MAX_PERIOD: u64 = 1 << 24;

fn invalid(msg: impl Into<String>) -> StreamError {
    StreamError::Checkpoint(PersistError::Format(msg.into()))
}

// ------------------------------------------------------------------- write

fn w_u64<W: Write>(w: &mut W, v: u64) -> Result<(), StreamError> {
    w.write_all(&v.to_le_bytes()).map_err(io_err)
}

fn w_u32<W: Write>(w: &mut W, v: u32) -> Result<(), StreamError> {
    w.write_all(&v.to_le_bytes()).map_err(io_err)
}

fn w_f64<W: Write>(w: &mut W, v: f64) -> Result<(), StreamError> {
    w_u64(w, v.to_bits())
}

fn io_err(e: std::io::Error) -> StreamError {
    StreamError::Checkpoint(PersistError::Io(e))
}

/// Serialize one stream's engine state.
pub fn save<W: Write>(
    w: W,
    stream: &str,
    model: &str,
    engine: &StreamEngine,
) -> Result<(), StreamError> {
    let mut w = CrcWriter::new(w);
    w.write_all(MAGIC).map_err(io_err)?;

    let header = [
        "version=1".to_string(),
        format!("stream={stream}"),
        format!("model={model}"),
        format!("window={}", engine.window),
        format!("stride={}", engine.stride),
        format!("period={}", engine.period),
        format!("capacity={}", engine.ring.capacity()),
        format!("tracked_bins={}", engine.cfg.tracked_bins),
        format!("enter_bits={}", engine.cfg.enter.to_bits()),
        format!("exit_bits={}", engine.cfg.exit.to_bits()),
        format!("base={}", engine.ring.base_seq()),
        format!("roll_count={}", engine.roll_count),
        format!("roll_sum_bits={}", engine.roll_sum.to_bits()),
        format!("roll_sumsq_bits={}", engine.roll_sumsq.to_bits()),
        format!("residual_sumsq_bits={}", engine.residual_sumsq.to_bits()),
        format!("sdft_ready={}", u8::from(engine.sdft_ready)),
        format!(
            "last_deviance_bits={}",
            engine.last_deviance.map_or(u64::MAX, f64::to_bits)
        ),
        format!(
            "has_last_deviance={}",
            u8::from(engine.last_deviance.is_some())
        ),
        format!("rejected_nonfinite={}", engine.rejected_nonfinite),
    ]
    .join("\n");
    w_u32(&mut w, header.len() as u32)?;
    w.write_all(header.as_bytes()).map_err(io_err)?;

    // Ring contents, oldest first.
    let ring = engine.ring.to_vec();
    w_u64(&mut w, ring.len() as u64)?;
    for v in &ring {
        w_f64(&mut w, *v)?;
    }

    // Sliding-DFT state, aligned with the reconstructable bin list.
    let spectrum = engine.sdft.spectrum();
    w_u64(&mut w, spectrum.len() as u64)?;
    for c in spectrum {
        w_f64(&mut w, c.re)?;
        w_f64(&mut w, c.im)?;
    }

    // Per-phase residual accumulators.
    w_u64(&mut w, engine.phase_sums.len() as u64)?;
    for s in &engine.phase_sums {
        w_f64(&mut w, *s)?;
    }
    for c in &engine.phase_counts {
        w_u64(&mut w, *c)?;
    }

    // Residual tail window.
    w_u64(&mut w, engine.residuals.len() as u64)?;
    for r in &engine.residuals {
        w_f64(&mut w, *r)?;
    }

    // Online-ranker state: embedding rows and pairwise-dot sums per domain.
    let (rows, sums) = engine.ranker.state();
    w_u64(&mut w, rows.len() as u64)?;
    for (domain_rows, domain_sums) in rows.iter().zip(sums) {
        w_u64(&mut w, domain_rows.len() as u64)?;
        for row in domain_rows {
            w_u32(&mut w, row.len() as u32)?;
            for &v in row {
                w_u32(&mut w, v.to_bits())?;
            }
        }
        w_u64(&mut w, domain_sums.len() as u64)?;
        for &s in domain_sums {
            w_f64(&mut w, s)?;
        }
    }

    // Scored-window starts.
    w_u64(&mut w, engine.window_starts.len() as u64)?;
    for &s in &engine.window_starts {
        w_u64(&mut w, s)?;
    }

    // Hysteresis events.
    w_u64(&mut w, engine.events.len() as u64)?;
    for ev in &engine.events {
        w_u64(&mut w, ev.start)?;
        w.write_all(&[u8::from(ev.end.is_some())]).map_err(io_err)?;
        w_u64(&mut w, ev.end.unwrap_or(0))?;
        w_f64(&mut w, ev.peak_deviance)?;
    }

    w.finish().map_err(io_err)?;
    Ok(())
}

/// Save to a file path (atomic-enough: write then rename would need a temp
/// file; the manager writes to `<name>.tmp` and renames, see `shard`).
pub fn save_file(
    path: &Path,
    stream: &str,
    model: &str,
    engine: &StreamEngine,
) -> Result<(), StreamError> {
    let f = std::fs::File::create(path).map_err(io_err)?;
    save(std::io::BufWriter::new(f), stream, model, engine)
}

// -------------------------------------------------------------------- read

fn r_u64<R: Read>(r: &mut R, what: &str) -> Result<u64, StreamError> {
    let mut b = [0u8; 8];
    read_exact_ctx(r, &mut b, what)?;
    Ok(u64::from_le_bytes(b))
}

fn r_u32<R: Read>(r: &mut R, what: &str) -> Result<u32, StreamError> {
    let mut b = [0u8; 4];
    read_exact_ctx(r, &mut b, what)?;
    Ok(u32::from_le_bytes(b))
}

fn r_f64<R: Read>(r: &mut R, what: &str) -> Result<f64, StreamError> {
    Ok(f64::from_bits(r_u64(r, what)?))
}

fn get<T: std::str::FromStr>(map: &HashMap<String, String>, key: &str) -> Result<T, StreamError> {
    map.get(key)
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| invalid(format!("missing/bad checkpoint header field {key}")))
}

/// Parsed-and-bounds-checked checkpoint, not yet bound to a model.
///
/// [`model`](CheckpointState::model) tells the caller which fitted model to
/// load; [`into_engine`](CheckpointState::into_engine) then validates shape
/// agreement before rebuilding the engine.
#[derive(Debug, Clone)]
pub struct CheckpointState {
    /// Stream name recorded at save time.
    pub stream: String,
    /// Model name recorded at save time.
    pub model: String,
    window: usize,
    stride: usize,
    period: usize,
    capacity: usize,
    tracked_bins: usize,
    enter: f64,
    exit: f64,
    base: u64,
    roll_count: usize,
    roll_sum: f64,
    roll_sumsq: f64,
    residual_sumsq: f64,
    sdft_ready: bool,
    last_deviance: Option<f64>,
    rejected_nonfinite: u64,
    ring: Vec<f64>,
    spectrum: Vec<Complex>,
    phase_sums: Vec<f64>,
    phase_counts: Vec<u64>,
    residuals: Vec<f64>,
    rows: Vec<Vec<Vec<f32>>>,
    sums: Vec<Vec<f64>>,
    window_starts: Vec<u64>,
    events: Vec<StreamEvent>,
}

/// Deserialize a checkpoint, bounds-checking every length field and
/// verifying the CRC trailer. Model binding happens in
/// [`CheckpointState::into_engine`].
pub fn load<R: Read>(r: R) -> Result<CheckpointState, StreamError> {
    let mut r = CrcReader::new(r);
    let mut magic = [0u8; 8];
    read_exact_ctx(&mut r, &mut magic, "checkpoint magic")?;
    if &magic != MAGIC {
        return Err(invalid("not a TRIADS1 stream checkpoint"));
    }

    let hlen = r_u32(&mut r, "checkpoint header length")? as usize;
    if hlen > MAX_HEADER {
        return Err(invalid(format!(
            "oversized checkpoint header ({hlen} bytes)"
        )));
    }
    let mut hbuf = vec![0u8; hlen];
    read_exact_ctx(&mut r, &mut hbuf, "checkpoint header")?;
    let header = String::from_utf8(hbuf).map_err(|_| invalid("non-UTF8 checkpoint header"))?;
    let mut map = HashMap::new();
    for line in header.lines() {
        let (k, v) = line
            .split_once('=')
            .ok_or_else(|| invalid(format!("bad checkpoint header line: {line}")))?;
        map.insert(k.to_string(), v.to_string());
    }

    let version: u32 = get(&map, "version")?;
    if version != 1 {
        return Err(invalid(format!("unsupported checkpoint version {version}")));
    }
    let window: usize = get(&map, "window")?;
    let stride: usize = get(&map, "stride")?;
    let period: usize = get(&map, "period")?;
    let capacity: usize = get(&map, "capacity")?;
    let tracked_bins: usize = get(&map, "tracked_bins")?;
    if window == 0 || stride == 0 || period == 0 {
        return Err(invalid(format!(
            "invalid checkpoint shape: window {window} / stride {stride} / period {period}"
        )));
    }
    if period as u64 > MAX_PERIOD || tracked_bins as u64 > MAX_PERIOD {
        return Err(invalid("implausible period / tracked_bins"));
    }
    if capacity < window + 1 || capacity as u64 > MAX_RING {
        return Err(invalid(format!(
            "invalid checkpoint capacity {capacity} for window {window}"
        )));
    }

    let state = CheckpointState {
        stream: get(&map, "stream")?,
        model: get(&map, "model")?,
        window,
        stride,
        period,
        capacity,
        tracked_bins,
        enter: f64::from_bits(get(&map, "enter_bits")?),
        exit: f64::from_bits(get(&map, "exit_bits")?),
        base: get(&map, "base")?,
        roll_count: get(&map, "roll_count")?,
        roll_sum: f64::from_bits(get(&map, "roll_sum_bits")?),
        roll_sumsq: f64::from_bits(get(&map, "roll_sumsq_bits")?),
        residual_sumsq: f64::from_bits(get(&map, "residual_sumsq_bits")?),
        sdft_ready: get::<u8>(&map, "sdft_ready")? != 0,
        last_deviance: if get::<u8>(&map, "has_last_deviance")? != 0 {
            Some(f64::from_bits(get(&map, "last_deviance_bits")?))
        } else {
            None
        },
        rejected_nonfinite: get(&map, "rejected_nonfinite")?,
        ring: Vec::new(),
        spectrum: Vec::new(),
        phase_sums: Vec::new(),
        phase_counts: Vec::new(),
        residuals: Vec::new(),
        rows: Vec::new(),
        sums: Vec::new(),
        window_starts: Vec::new(),
        events: Vec::new(),
    };
    let mut st = state;

    // Ring.
    let n_ring = r_u64(&mut r, "ring length")?;
    if n_ring > st.capacity as u64 {
        return Err(invalid(format!(
            "ring length {n_ring} exceeds capacity {}",
            st.capacity
        )));
    }
    st.ring = (0..n_ring)
        .map(|_| r_f64(&mut r, "ring sample"))
        .collect::<Result<_, _>>()?;

    // Sliding-DFT spectrum.
    let n_bins = r_u64(&mut r, "sdft bin count")?;
    let expect_bins = st.tracked_bins.min(st.window) as u64;
    if n_bins != expect_bins {
        return Err(invalid(format!(
            "sdft bin count {n_bins} does not match tracked_bins {} for window {}",
            st.tracked_bins, st.window
        )));
    }
    st.spectrum = (0..n_bins)
        .map(|_| {
            let re = r_f64(&mut r, "sdft re")?;
            let im = r_f64(&mut r, "sdft im")?;
            Ok::<_, StreamError>(Complex::new(re, im))
        })
        .collect::<Result<_, _>>()?;

    // Per-phase accumulators.
    let n_phase = r_u64(&mut r, "phase count")?;
    if n_phase != st.period as u64 {
        return Err(invalid(format!(
            "phase table length {n_phase} does not match period {}",
            st.period
        )));
    }
    st.phase_sums = (0..n_phase)
        .map(|_| r_f64(&mut r, "phase sum"))
        .collect::<Result<_, _>>()?;
    st.phase_counts = (0..n_phase)
        .map(|_| r_u64(&mut r, "phase counter"))
        .collect::<Result<_, _>>()?;

    // Residual tail.
    let n_res = r_u64(&mut r, "residual length")?;
    if n_res > st.window as u64 {
        return Err(invalid(format!(
            "residual window {n_res} exceeds window length {}",
            st.window
        )));
    }
    st.residuals = (0..n_res)
        .map(|_| r_f64(&mut r, "residual sample"))
        .collect::<Result<_, _>>()?;

    // Ranker state.
    let n_domains = r_u64(&mut r, "domain count")?;
    if n_domains > MAX_DOMAINS {
        return Err(invalid(format!("implausible domain count {n_domains}")));
    }
    for _ in 0..n_domains {
        let n_rows = r_u64(&mut r, "row count")?;
        if n_rows > MAX_WINDOWS {
            return Err(invalid(format!("implausible row count {n_rows}")));
        }
        let mut domain_rows = Vec::with_capacity(n_rows as usize);
        for _ in 0..n_rows {
            let rl = r_u32(&mut r, "row length")?;
            if rl > MAX_ROW {
                return Err(invalid(format!("implausible embedding row length {rl}")));
            }
            let mut row = Vec::with_capacity(rl as usize);
            for _ in 0..rl {
                row.push(f32::from_bits(r_u32(&mut r, "row value")?));
            }
            domain_rows.push(row);
        }
        let n_sums = r_u64(&mut r, "sum count")?;
        if n_sums != n_rows {
            return Err(invalid(format!(
                "ranker sums ({n_sums}) misaligned with rows ({n_rows})"
            )));
        }
        let domain_sums = (0..n_sums)
            .map(|_| r_f64(&mut r, "pairwise sum"))
            .collect::<Result<_, _>>()?;
        st.rows.push(domain_rows);
        st.sums.push(domain_sums);
    }

    // Window starts.
    let n_starts = r_u64(&mut r, "window-start count")?;
    if n_starts > MAX_WINDOWS {
        return Err(invalid(format!("implausible window count {n_starts}")));
    }
    st.window_starts = (0..n_starts)
        .map(|_| r_u64(&mut r, "window start"))
        .collect::<Result<_, _>>()?;

    // Events.
    let n_events = r_u64(&mut r, "event count")?;
    if n_events > MAX_EVENTS {
        return Err(invalid(format!("implausible event count {n_events}")));
    }
    for _ in 0..n_events {
        let start = r_u64(&mut r, "event start")?;
        let mut flag = [0u8; 1];
        read_exact_ctx(&mut r, &mut flag, "event end flag")?;
        let end_raw = r_u64(&mut r, "event end")?;
        let peak_deviance = r_f64(&mut r, "event peak")?;
        st.events.push(StreamEvent {
            start,
            end: (flag[0] != 0).then_some(end_raw),
            peak_deviance,
        });
    }

    r.verify_trailer()?;

    // Cross-section consistency not already enforced inline.
    for (domain_rows, domain_sums) in st.rows.iter().zip(&st.sums) {
        debug_assert_eq!(domain_rows.len(), domain_sums.len());
    }
    if let Some(first) = st.rows.first() {
        if first.len() != st.window_starts.len() {
            return Err(invalid(format!(
                "scored-window starts ({}) misaligned with ranker rows ({})",
                st.window_starts.len(),
                first.len()
            )));
        }
    }
    Ok(st)
}

/// Load from a file path.
pub fn load_file(path: &Path) -> Result<CheckpointState, StreamError> {
    let f = std::fs::File::open(path).map_err(io_err)?;
    load(std::io::BufReader::new(f))
}

impl CheckpointState {
    /// Validate this checkpoint against the fitted model it claims to have
    /// been built with and rebuild the engine. Shape disagreements surface
    /// as [`StreamError::ModelMismatch`], never as a panic.
    pub fn into_engine(self, fitted: &FittedTriad) -> Result<StreamEngine, StreamError> {
        if fitted.window_len() != self.window
            || fitted.segmenter().stride != self.stride
            || fitted.period().max(1) != self.period
        {
            return Err(StreamError::ModelMismatch(format!(
                "checkpoint shape (window {}, stride {}, period {}) does not match model {:?} \
                 (window {}, stride {}, period {})",
                self.window,
                self.stride,
                self.period,
                self.model,
                fitted.window_len(),
                fitted.segmenter().stride,
                fitted.period().max(1)
            )));
        }
        let fresh = fitted.online_ranker();
        if self.rows.len() != fresh.domains().len() {
            return Err(StreamError::ModelMismatch(format!(
                "checkpoint has {} domains, model {:?} has {}",
                self.rows.len(),
                self.model,
                fresh.domains().len()
            )));
        }

        let bins: Vec<usize> = (0..self.tracked_bins.min(self.window)).collect();
        let mut sdft = SlidingDft::new(self.window, &bins);
        sdft.set_spectrum(&self.spectrum);

        Ok(StreamEngine {
            cfg: StreamConfig {
                capacity: self.capacity,
                enter: self.enter,
                exit: self.exit,
                tracked_bins: self.tracked_bins,
            },
            window: self.window,
            stride: self.stride,
            period: self.period,
            ring: RingBuffer::from_parts(self.capacity, self.base, self.ring),
            ranker: OnlineRanker::from_state(fitted.model(), self.rows, self.sums),
            window_starts: self.window_starts,
            roll_sum: self.roll_sum,
            roll_sumsq: self.roll_sumsq,
            roll_count: self.roll_count,
            sdft,
            sdft_ready: self.sdft_ready,
            phase_sums: self.phase_sums,
            phase_counts: self.phase_counts,
            residuals: VecDeque::from(self.residuals),
            residual_sumsq: self.residual_sumsq,
            events: self.events,
            last_deviance: self.last_deviance,
            rejected_nonfinite: self.rejected_nonfinite,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::StreamConfig;
    use crate::testutil::{anomalous_test, periodic, quick_fitted};
    use triad_core::{TriAd, TriadConfig};

    fn streamed_engine(fitted: &FittedTriad, points: &[f64]) -> StreamEngine {
        let mut engine = StreamEngine::new(
            fitted,
            StreamConfig {
                enter: 0.3,
                exit: 0.1,
                ..StreamConfig::default()
            },
        );
        for &x in points {
            engine.push(fitted, x).expect("finite");
        }
        engine
    }

    #[test]
    fn kill_and_restore_mid_stream_is_bit_identical() {
        let fitted = quick_fitted();
        let test = anomalous_test(420, 32.0);
        let cut = 230; // mid-stream, past several windows and the anomaly start

        let mut original = streamed_engine(&fitted, &test[..cut]);
        let mut buf = Vec::new();
        save(&mut buf, "s1", "m1", &original).expect("save");

        let state = load(buf.as_slice()).expect("load");
        assert_eq!(state.stream, "s1");
        assert_eq!(state.model, "m1");
        let mut restored = state.into_engine(&fitted).expect("into_engine");
        assert_eq!(restored.status(), original.status());

        // Both engines continue over the identical tail…
        for &x in &test[cut..] {
            let a = original.push(&fitted, x).expect("finite");
            let b = restored.push(&fitted, x).expect("finite");
            assert_eq!(a, b);
        }
        assert_eq!(restored.status(), original.status());
        // …and the kill-and-restore run finalizes bit-equal to both the
        // uninterrupted engine and the offline batch detection.
        let det_restored = restored.finalize(&fitted).expect("finalize");
        assert_eq!(det_restored, original.finalize(&fitted).expect("finalize"));
        assert_eq!(det_restored, fitted.detect(&test));
    }

    #[test]
    fn every_truncation_and_bit_flip_is_rejected() {
        let fitted = quick_fitted();
        let engine = streamed_engine(&fitted, &periodic(300, 32.0));
        let mut buf = Vec::new();
        save(&mut buf, "s1", "m1", &engine).expect("save");

        let step = (buf.len() / 19).max(1);
        for cut in (0..buf.len()).step_by(step) {
            assert!(load(&buf[..cut]).is_err(), "prefix of {cut} bytes loaded");
        }
        for pos in (0..buf.len()).step_by(step) {
            let mut evil = buf.clone();
            evil[pos] ^= 0x10;
            assert!(load(evil.as_slice()).is_err(), "bit flip at {pos} loaded");
        }
    }

    #[test]
    fn not_a_checkpoint_is_rejected() {
        assert!(load(&b"garbage"[..]).is_err());
        assert!(load(&b"TRIAD2\n\0\0\0\0more"[..]).is_err());
    }

    #[test]
    fn model_mismatch_is_a_typed_error_not_a_panic() {
        let fitted = quick_fitted();
        let engine = streamed_engine(&fitted, &periodic(300, 32.0));
        let mut buf = Vec::new();
        save(&mut buf, "s1", "m1", &engine).expect("save");

        // A model trained on a different period has a different window.
        let other = TriAd::new(TriadConfig {
            epochs: 1,
            depth: 1,
            hidden: 6,
            batch: 4,
            merlin_step: 8,
            period_override: Some(16),
            ..Default::default()
        })
        .fit(&periodic(400, 16.0))
        .expect("fit");
        assert_ne!(other.window_len(), fitted.window_len());

        let state = load(buf.as_slice()).expect("load");
        assert!(matches!(
            state.into_engine(&other),
            Err(StreamError::ModelMismatch(_))
        ));
    }

    #[test]
    fn file_round_trip_with_temp_path() {
        let fitted = quick_fitted();
        let engine = streamed_engine(&fitted, &periodic(260, 32.0));
        let path = std::env::temp_dir().join("triad_stream_ckpt_test.ckpt");
        save_file(&path, "s9", "m9", &engine).expect("save_file");
        let state = load_file(&path).expect("load_file");
        assert_eq!(state.stream, "s9");
        let restored = state.into_engine(&fitted).expect("into_engine");
        assert_eq!(restored.status(), engine.status());
        std::fs::remove_file(&path).ok();
    }
}
