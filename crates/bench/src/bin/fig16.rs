//! Fig. 16 — TriAD detects all six anomaly families. Runs the full pipeline
//! on one dataset per family and reports window hits + affiliation F1.
//!
//! Flags: `--epochs N`.

use bench::{f3, print_table, Args};
use triad_core::TriadConfig;
use ucrgen::anomaly::AnomalyKind;
use ucrgen::archive::generate_dataset;

fn main() {
    let args = Args::parse();
    let epochs: usize = args.get("epochs", 5);
    let mut rows = Vec::new();
    for kind in AnomalyKind::ALL {
        let ds = (0..60)
            .map(|id| generate_dataset(7, id))
            .find(|d| d.kind == kind)
            .expect("every kind appears");
        let cfg = TriadConfig {
            epochs,
            merlin_step: 2,
            ..Default::default()
        };
        match bench::run_triad(&ds, &cfg) {
            Ok(o) => rows.push(vec![
                kind.name().into(),
                ds.name.clone(),
                ds.anomaly_len().to_string(),
                o.tri_window_hit.to_string(),
                o.single_window_hit.to_string(),
                f3(o.metrics.affiliation.f1),
                f3(o.metrics.pak.f1_auc),
            ]),
            Err(e) => rows.push(vec![
                kind.name().into(),
                ds.name.clone(),
                e,
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]),
        }
        eprintln!("{} done", kind.name());
    }
    print_table(
        "Fig. 16 — TriAD across the six anomaly families",
        &[
            "Anomaly",
            "Dataset",
            "len",
            "tri-hit",
            "single-hit",
            "Aff F1",
            "PA%K F1",
        ],
        &rows,
    );
}
