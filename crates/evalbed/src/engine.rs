//! The batch evaluation engine: a deterministic work queue of
//! (method, dataset) tasks over `crates/parallel`, with crash-resumable
//! JSONL output and TriAD model caching through the serve registry.
//!
//! Determinism contract: every task is a pure function of the run
//! parameters (archive seed, model seed, epochs, smoke flag), so the result
//! set — and therefore the gated summary — is bit-identical at any thread
//! count. Scheduling order, append order and aggregation order are all
//! fixed by the task list, never by completion time.
//!
//! Crash resumability: tasks run in fixed-size batches; each batch's rows
//! are appended (one fsync'd write) only after the whole batch completes.
//! A kill therefore loses at most the in-flight batch, and `--resume`
//! re-runs exactly the tasks whose rows did not land intact.

use crate::methods::{self, MethodConfig, SharedRegistry};
use crate::metrics::MetricSet;
use crate::rows::{self, ResultRow};
use crate::summary::{RunMeta, Summary};
use std::path::PathBuf;
use std::sync::{Arc, RwLock};
use triad_core::NumericMode;
use triad_serve::{Metrics, ModelRegistry};
use ucrgen::archive::generate_dataset;
use ucrgen::UcrDataset;

/// Tasks per append batch. Small enough that a mid-run kill forfeits little
/// work, large enough that the fsync per batch is noise.
const BATCH: usize = 16;

/// How many fitted TriAD models the registry keeps deserialized at once.
/// Models are read once per task and the working set is bounded, so a small
/// cache suffices; evicted entries stay on disk.
const MODEL_CACHE_CAPACITY: usize = 8;

/// A full run specification, as assembled by the CLI.
#[derive(Debug, Clone)]
pub struct EvalbedOptions {
    /// Output directory (JSONL rows, summary JSON, markdown).
    pub out_dir: PathBuf,
    /// CI-scale run: small models, small default dataset/method subsets.
    pub smoke: bool,
    /// Dataset ids to evaluate (1-based archive numbering).
    pub datasets: Vec<usize>,
    /// Methods to run, execution order.
    pub methods: Vec<String>,
    /// Metric columns for the summary (empty = all).
    pub metrics: Vec<String>,
    /// Training epochs for every method.
    pub epochs: usize,
    /// Model seed (TriAD and baselines).
    pub seed: u64,
    /// Master seed for `ucrgen::archive` generation.
    pub archive_seed: u64,
    /// Worker threads (0 = auto, honouring `TRIAD_THREADS`).
    pub threads: usize,
    /// Numeric kernel mode for TriAD detection (`exact` or `fast`). Not
    /// part of the model cache key — fits are mode-independent.
    pub numeric_mode: NumericMode,
    /// Keep existing rows and re-run only missing tasks.
    pub resume: bool,
    /// Disable the TriAD model cache (always refit).
    pub no_cache: bool,
    /// Model cache directory (default: `<out_dir>/models`).
    pub models_dir: Option<PathBuf>,
    /// Append the TriAD stride variants to the method list.
    pub stride_sweep: bool,
    /// Baseline summary to gate against; regressions fail the run.
    pub check: Option<PathBuf>,
    /// Metric-drop tolerance for `--check`.
    pub tolerance: f64,
}

impl EvalbedOptions {
    /// Defaults for a full-archive run rooted at `out_dir`.
    pub fn full(out_dir: PathBuf) -> Self {
        EvalbedOptions {
            out_dir,
            smoke: false,
            datasets: (1..=250).collect(),
            methods: methods::ALL_METHODS.iter().map(|s| s.to_string()).collect(),
            metrics: Vec::new(),
            epochs: 5,
            seed: 0,
            archive_seed: 7,
            threads: 0,
            numeric_mode: NumericMode::Exact,
            resume: false,
            no_cache: false,
            models_dir: None,
            stride_sweep: false,
            check: None,
            tolerance: 1e-9,
        }
    }

    /// Defaults for the CI smoke run: 4 datasets (one per quadrant of the
    /// family × anomaly grid), TriAD plus a representative baseline spread,
    /// tiny models.
    pub fn smoke(out_dir: PathBuf) -> Self {
        EvalbedOptions {
            smoke: true,
            datasets: vec![1, 2, 3, 4],
            methods: ["triad", "lstm_ae_random", "usad", "ts2vec", "random"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            epochs: 2,
            ..EvalbedOptions::full(out_dir)
        }
    }

    fn method_list(&self) -> Vec<String> {
        let mut list = self.methods.clone();
        if self.stride_sweep {
            for (name, _) in methods::STRIDE_VARIANTS {
                if !list.iter().any(|m| m == name) {
                    list.push(name.to_string());
                }
            }
        }
        list
    }
}

/// What a run produced, for reporting.
#[derive(Debug)]
pub struct RunOutcome {
    pub summary: Summary,
    /// Tasks executed this run (not satisfied from existing rows).
    pub executed: usize,
    /// Tasks satisfied by intact rows from a previous run.
    pub resumed: usize,
    /// Damaged/duplicate lines skipped while loading existing rows.
    pub skipped_lines: usize,
    /// Tasks that reused a cached fitted model instead of training.
    pub models_reused: usize,
    pub rows_path: PathBuf,
    pub summary_path: PathBuf,
    pub markdown_path: PathBuf,
    /// Regressions found by `--check` (empty = gate passed).
    pub regressions: Vec<String>,
}

struct Task {
    method: String,
    dataset_idx: usize,
}

/// Run the testbed: schedule, execute, persist, aggregate, gate.
pub fn run(opts: &EvalbedOptions) -> Result<RunOutcome, String> {
    let mut span = obs::span("evalbed.run");
    let method_list = opts.method_list();
    methods::validate(&method_list)?;
    crate::metrics::validate_filter(&opts.metrics)?;
    if opts.datasets.is_empty() {
        return Err("no datasets selected".into());
    }
    if method_list.is_empty() {
        return Err("no methods selected".into());
    }
    span.add_field("methods", method_list.len());
    span.add_field("datasets", opts.datasets.len());

    std::fs::create_dir_all(&opts.out_dir)
        .map_err(|e| format!("{}: {e}", opts.out_dir.display()))?;
    let rows_path = opts.out_dir.join("results.jsonl");

    // Datasets are generated up front (cheap, pure, parallel): each task
    // needs its series and labels, and sharing one copy beats regenerating
    // per task.
    let datasets: Vec<UcrDataset> = parallel::with_ambient(opts.threads, || {
        parallel::map_indexed(parallel::ambient(), &opts.datasets, |_, &id| {
            generate_dataset(opts.archive_seed, id)
        })
    });

    // The deterministic task list: method-major, dataset order within.
    let tasks: Vec<Task> = method_list
        .iter()
        .flat_map(|m| {
            (0..datasets.len()).map(move |dataset_idx| Task {
                method: m.clone(),
                dataset_idx,
            })
        })
        .collect();

    // Resume: keep intact rows whose key belongs to this run's task set.
    let (mut completed, skipped_lines) = if opts.resume {
        let loaded = rows::load_rows(&rows_path)?;
        let wanted: std::collections::HashSet<(String, usize)> = tasks
            .iter()
            .map(|t| (t.method.clone(), datasets[t.dataset_idx].id))
            .collect();
        let rows: Vec<ResultRow> = loaded
            .rows
            .into_iter()
            .filter(|r| wanted.contains(&r.key()))
            .collect();
        (rows, loaded.skipped_lines)
    } else {
        // A fresh run starts a fresh file; stale rows must not satisfy
        // resume keys for different parameters.
        match std::fs::remove_file(&rows_path) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(format!("{}: {e}", rows_path.display())),
        }
        (Vec::new(), 0)
    };
    let done: std::collections::HashSet<(String, usize)> =
        completed.iter().map(ResultRow::key).collect();
    let resumed = completed.len();

    let pending: Vec<&Task> = tasks
        .iter()
        .filter(|t| !done.contains(&(t.method.clone(), datasets[t.dataset_idx].id)))
        .collect();

    // Model cache through the serve registry (TriAD only — baselines have
    // no persisted format and retrain in milliseconds at these scales).
    let registry: Option<SharedRegistry> = if opts.no_cache {
        None
    } else {
        let dir = opts
            .models_dir
            .clone()
            .unwrap_or_else(|| opts.out_dir.join("models"));
        std::fs::create_dir_all(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        let mut reg = ModelRegistry::open(&dir, MODEL_CACHE_CAPACITY, Arc::new(Metrics::new()))
            .map_err(|e| format!("{}: {e}", dir.display()))?;
        reg.set_numeric_mode(opts.numeric_mode);
        Some(Arc::new(RwLock::new(reg)))
    };

    let method_cfg = MethodConfig {
        smoke: opts.smoke,
        epochs: opts.epochs,
        seed: opts.seed,
        numeric_mode: opts.numeric_mode,
    };

    // Execute in fixed batches; append each batch's rows in task order.
    let run_span_id = span.id();
    let mut executed = 0usize;
    let mut models_reused = 0usize;
    for batch in pending.chunks(BATCH) {
        let results: Vec<Result<(ResultRow, bool), String>> =
            parallel::with_ambient(opts.threads, || {
                parallel::map_indexed(parallel::ambient(), batch, |_, task| {
                    run_task(task, &datasets, &method_cfg, registry.as_ref(), run_span_id)
                })
            });
        let mut fresh = Vec::with_capacity(results.len());
        for (task, result) in batch.iter().zip(results) {
            let (row, reused) = result.map_err(|e| {
                format!(
                    "task ({}, {}) failed: {e}",
                    task.method, datasets[task.dataset_idx].id
                )
            })?;
            if reused {
                models_reused += 1;
            }
            fresh.push(row);
        }
        rows::append_rows(&rows_path, &fresh)?;
        executed += fresh.len();
        completed.extend(fresh);
    }

    // Aggregate in canonical task order (resume may have loaded rows in a
    // different file order).
    let meta = RunMeta {
        smoke: opts.smoke,
        archive_seed: opts.archive_seed,
        seed: opts.seed,
        epochs: opts.epochs,
    };
    let summary = Summary::from_rows(
        &completed,
        &method_list,
        &opts.datasets,
        &opts.metrics,
        &meta,
    )?;

    let summary_path = opts.out_dir.join("EVALBED_summary.json");
    let markdown_path = opts.out_dir.join("EVALBED.md");
    std::fs::write(&summary_path, summary.to_json(false) + "\n")
        .map_err(|e| format!("{}: {e}", summary_path.display()))?;
    std::fs::write(&markdown_path, summary.to_markdown())
        .map_err(|e| format!("{}: {e}", markdown_path.display()))?;

    // The regression gate, when a baseline is supplied.
    let regressions = match &opts.check {
        Some(baseline_path) => {
            let text = std::fs::read_to_string(baseline_path)
                .map_err(|e| format!("{}: {e}", baseline_path.display()))?;
            let baseline = Summary::parse(&text)?;
            crate::summary::compare(&summary, &baseline, opts.tolerance)
        }
        None => Vec::new(),
    };

    span.add_field("executed", executed);
    span.add_field("resumed", resumed);
    Ok(RunOutcome {
        summary,
        executed,
        resumed,
        skipped_lines,
        models_reused,
        rows_path,
        summary_path,
        markdown_path,
        regressions,
    })
}

fn run_task(
    task: &Task,
    datasets: &[UcrDataset],
    cfg: &MethodConfig,
    registry: Option<&SharedRegistry>,
    parent: u64,
) -> Result<(ResultRow, bool), String> {
    let ds = &datasets[task.dataset_idx];
    let mut span = obs::span_with_parent("evalbed.task", parent);
    span.add_field("method", &task.method);
    span.add_field("dataset", ds.id);
    let started = obs::now_instant();
    let out = methods::run_method(&task.method, ds, cfg, registry)?;
    let wall_ms = started.elapsed().as_secs_f64() * 1000.0;
    let labels = ds.test_labels();
    let metrics = MetricSet::evaluate(&out.scores, &out.pred, &labels);
    span.add_field("reused_model", out.reused_model);
    Ok((
        ResultRow {
            method: task.method.clone(),
            dataset: ds.id,
            dataset_name: ds.name.clone(),
            anomaly_kind: ds.kind.name().to_string(),
            n_test: ds.test().len(),
            metrics,
            wall_ms,
        },
        out.reused_model,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts(dir: &str) -> EvalbedOptions {
        let out = std::env::temp_dir().join(format!("{dir}_{}", std::process::id()));
        EvalbedOptions {
            datasets: vec![1, 2],
            methods: vec!["random".to_string(), "lstm_ae_random".to_string()],
            epochs: 1,
            ..EvalbedOptions::smoke(out)
        }
    }

    #[test]
    fn tiny_run_produces_complete_summary() {
        let opts = tiny_opts("evalbed_engine_tiny");
        let outcome = run(&opts).expect("run");
        assert_eq!(outcome.executed, 4);
        assert_eq!(outcome.resumed, 0);
        assert_eq!(outcome.summary.methods.len(), 2);
        assert_eq!(outcome.summary.dataset_ids, vec![1, 2]);
        assert!(outcome.summary_path.exists());
        assert!(outcome.markdown_path.exists());
        assert!(outcome.regressions.is_empty());
        std::fs::remove_dir_all(&opts.out_dir).ok();
    }

    #[test]
    fn resume_skips_completed_tasks() {
        let opts = tiny_opts("evalbed_engine_resume");
        let first = run(&opts).expect("first run");
        assert_eq!(first.executed, 4);
        let resumed = run(&EvalbedOptions {
            resume: true,
            ..opts.clone()
        })
        .expect("resumed run");
        assert_eq!(resumed.executed, 0);
        assert_eq!(resumed.resumed, 4);
        // Identical gated summary either way.
        assert_eq!(first.summary.to_json(true), resumed.summary.to_json(true));
        std::fs::remove_dir_all(&opts.out_dir).ok();
    }

    #[test]
    fn check_gate_passes_against_own_output() {
        let opts = tiny_opts("evalbed_engine_gate");
        let first = run(&opts).expect("first run");
        let gated = run(&EvalbedOptions {
            resume: true,
            check: Some(first.summary_path.clone()),
            ..opts.clone()
        })
        .expect("gated run");
        assert!(gated.regressions.is_empty(), "{:?}", gated.regressions);
        std::fs::remove_dir_all(&opts.out_dir).ok();
    }
}
