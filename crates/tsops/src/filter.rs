//! Butterworth low-pass filtering.
//!
//! The paper's *warping* augmentation (Eq. 4) replaces a random segment with a
//! Butterworth-filtered version of itself, "emphasizing the primary
//! frequencies of input slices". The order is unspecified; we use the common
//! order-4 design realised as two cascaded biquad (second-order) sections
//! derived from the analog Butterworth prototype via the bilinear transform,
//! and apply it forward–backward ([`filtfilt`]) so the filtered segment stays
//! phase-aligned with the original window — a shifted segment would be an
//! artefact rather than a "smoothed anomaly".

/// One direct-form-I biquad section `H(z) = (b0 + b1 z⁻¹ + b2 z⁻²)/(1 + a1 z⁻¹ + a2 z⁻²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Biquad {
    pub b0: f64,
    pub b1: f64,
    pub b2: f64,
    pub a1: f64,
    pub a2: f64,
}

impl Biquad {
    /// Second-order Butterworth low-pass section with quality factor `q` and
    /// cutoff `cutoff` expressed as a fraction of the Nyquist frequency,
    /// `0 < cutoff < 1`.
    pub fn lowpass(cutoff: f64, q: f64) -> Self {
        assert!(
            cutoff > 0.0 && cutoff < 1.0,
            "cutoff must be in (0,1) of Nyquist, got {cutoff}"
        );
        let k = (std::f64::consts::PI * cutoff / 2.0).tan();
        let norm = 1.0 / (1.0 + k / q + k * k);
        let b0 = k * k * norm;
        Biquad {
            b0,
            b1: 2.0 * b0,
            b2: b0,
            a1: 2.0 * (k * k - 1.0) * norm,
            a2: (1.0 - k / q + k * k) * norm,
        }
    }

    /// Filter one sample, updating the section's delay state.
    #[inline]
    fn step(&self, x: f64, state: &mut [f64; 4]) -> f64 {
        // state = [x1, x2, y1, y2]
        let y = self.b0 * x + self.b1 * state[0] + self.b2 * state[1]
            - self.a1 * state[2]
            - self.a2 * state[3];
        state[1] = state[0];
        state[0] = x;
        state[3] = state[2];
        state[2] = y;
        y
    }

    /// Magnitude response `|H(e^{iω})|` at normalized frequency `freq`
    /// (fraction of Nyquist). Used by tests and the augmentation docs.
    pub fn magnitude(&self, freq: f64) -> f64 {
        let w = std::f64::consts::PI * freq;
        let z1 = crate::fft::Complex::cis(-w);
        let z2 = crate::fft::Complex::cis(-2.0 * w);
        let num = crate::fft::Complex::new(self.b0, 0.0) + z1.scale(self.b1) + z2.scale(self.b2);
        let den = crate::fft::Complex::ONE + z1.scale(self.a1) + z2.scale(self.a2);
        num.abs() / den.abs()
    }
}

/// A cascade of biquad sections forming a higher-order Butterworth filter.
#[derive(Debug, Clone, PartialEq)]
pub struct Butterworth {
    sections: Vec<Biquad>,
}

impl Butterworth {
    /// Even-order Butterworth low-pass. `order` must be a positive even
    /// number; `cutoff` is a fraction of Nyquist in `(0, 1)`.
    ///
    /// The analog prototype's conjugate pole pairs map to per-section quality
    /// factors `Qᵢ = 1 / (2·cos(π(2i+1)/(2n)))`.
    pub fn lowpass(order: usize, cutoff: f64) -> Self {
        assert!(order >= 2 && order % 2 == 0, "order must be even ≥ 2");
        let n = order as f64;
        let sections = (0..order / 2)
            .map(|i| {
                let theta = std::f64::consts::PI * (2.0 * i as f64 + 1.0) / (2.0 * n);
                let q = 1.0 / (2.0 * theta.cos());
                Biquad::lowpass(cutoff, q)
            })
            .collect();
        Butterworth { sections }
    }

    pub fn order(&self) -> usize {
        self.sections.len() * 2
    }

    /// Causal (forward-only) filtering with zero initial state.
    pub fn filter(&self, x: &[f64]) -> Vec<f64> {
        let mut out = x.to_vec();
        for s in &self.sections {
            let mut state = [0.0f64; 4];
            for v in &mut out {
                *v = s.step(*v, &mut state);
            }
        }
        out
    }

    /// Combined magnitude response of the cascade.
    pub fn magnitude(&self, freq: f64) -> f64 {
        self.sections.iter().map(|s| s.magnitude(freq)).product()
    }
}

/// Zero-phase filtering: forward pass, reverse, forward pass, reverse —
/// squaring the magnitude response and cancelling the phase response.
///
/// Edge transients are suppressed by reflect-padding `3 × order` samples at
/// each end (the `scipy.signal.filtfilt` default strategy).
pub fn filtfilt(filter: &Butterworth, x: &[f64]) -> Vec<f64> {
    let n = x.len();
    if n == 0 {
        return Vec::new();
    }
    let pad = (3 * filter.order()).min(n.saturating_sub(1));

    // Odd reflection about the endpoints: 2·x[0] − x[pad..1], keeps level and
    // slope continuous at the boundary.
    let mut padded = Vec::with_capacity(n + 2 * pad);
    for i in (1..=pad).rev() {
        padded.push(2.0 * x[0] - x[i]);
    }
    padded.extend_from_slice(x);
    for i in 1..=pad {
        padded.push(2.0 * x[n - 1] - x[n - 1 - i]);
    }

    let mut y = filter.filter(&padded);
    y.reverse();
    let mut y = filter.filter(&y);
    y.reverse();
    y[pad..pad + n].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn unit_dc_gain() {
        let f = Butterworth::lowpass(4, 0.2);
        assert!((f.magnitude(0.0) - 1.0).abs() < 1e-12);
        // A constant input passes unchanged (after transient).
        let x = vec![2.5; 400];
        let y = f.filter(&x);
        assert!((y[399] - 2.5).abs() < 1e-6);
    }

    #[test]
    fn cutoff_attenuation_is_minus_3db() {
        for order in [2usize, 4, 6] {
            let f = Butterworth::lowpass(order, 0.3);
            let g = f.magnitude(0.3);
            let target = 1.0 / 2.0f64.sqrt();
            assert!((g - target).abs() < 1e-9, "order {order}: gain {g}");
        }
    }

    #[test]
    fn stopband_attenuates_passband_passes() {
        let f = Butterworth::lowpass(4, 0.1);
        assert!(f.magnitude(0.05) > 0.95);
        assert!(f.magnitude(0.5) < 0.01);
        assert!(f.magnitude(0.9) < 1e-4);
    }

    #[test]
    fn filter_removes_high_frequency_component() {
        // low (k=2) + high (k=40) sinusoids over 256 samples.
        let n = 256;
        let x: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 / n as f64;
                (2.0 * PI * 2.0 * t).sin() + (2.0 * PI * 40.0 * t).sin()
            })
            .collect();
        let f = Butterworth::lowpass(4, 0.08); // cutoff ≈ bin 10
        let y = filtfilt(&f, &x);
        // Remaining signal should be close to the low-frequency component.
        let low: Vec<f64> = (0..n)
            .map(|i| (2.0 * PI * 2.0 * i as f64 / n as f64).sin())
            .collect();
        let err: f64 = y
            .iter()
            .zip(&low)
            .skip(20)
            .take(n - 40)
            .map(|(a, b)| (a - b).powi(2))
            .sum::<f64>()
            / (n - 40) as f64;
        assert!(err < 0.01, "residual error {err}");
    }

    #[test]
    fn filtfilt_preserves_length_and_is_zero_phase() {
        let n = 300;
        let x: Vec<f64> = (0..n)
            .map(|i| (2.0 * PI * 3.0 * i as f64 / n as f64).sin())
            .collect();
        let f = Butterworth::lowpass(4, 0.2);
        let y = filtfilt(&f, &x);
        assert_eq!(y.len(), n);
        // Zero-phase: the filtered low-frequency sine should align with the
        // original (no lag) — peak positions coincide.
        let argmax = |v: &[f64]| {
            v.iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .unwrap()
                .0
        };
        let shift = argmax(&x[..100]) as i64 - argmax(&y[..100]) as i64;
        assert!(shift.abs() <= 1, "phase shift {shift}");
    }

    #[test]
    fn filtfilt_handles_short_inputs() {
        let f = Butterworth::lowpass(4, 0.3);
        assert!(filtfilt(&f, &[]).is_empty());
        let y = filtfilt(&f, &[1.0]);
        assert_eq!(y.len(), 1);
        let y = filtfilt(&f, &[1.0, 2.0, 3.0]);
        assert_eq!(y.len(), 3);
        assert!(y.iter().all(|v| v.is_finite()));
    }

    #[test]
    #[should_panic(expected = "cutoff")]
    fn invalid_cutoff_panics() {
        Biquad::lowpass(1.5, 0.707);
    }
}
