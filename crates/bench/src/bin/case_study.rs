//! Case study (Figs. 10–13) — the full inference walk-through the paper
//! performs on UCR "025": per-domain window similarity scores (Fig. 11),
//! MERLIN's per-length discords around the selected window (Fig. 12), and
//! the detection results under a sweep of voting thresholds (Fig. 13).
//!
//! Flags: `--epochs N`, `--dataset N` (archive id, default picks a seasonal
//! anomaly like the paper's "025").

use bench::{print_series, Args};
use evalkit::pointwise::prf;
use triad_core::{TriAd, TriadConfig};
use ucrgen::anomaly::AnomalyKind;
use ucrgen::archive::generate_dataset;

fn main() {
    let args = Args::parse();
    let epochs: usize = args.get("epochs", 6);
    let pick: usize = args.get("dataset", usize::MAX);
    let ds = if pick != usize::MAX {
        generate_dataset(7, pick)
    } else {
        (0..60)
            .map(|id| generate_dataset(7, id))
            .find(|d| d.kind == AnomalyKind::Seasonal)
            .expect("seasonal dataset exists")
    };
    println!(
        "# Case study on {} — test {} pts, anomaly {:?} ({} pts), period {}",
        ds.name,
        ds.test().len(),
        ds.anomaly_in_test(),
        ds.anomaly_len(),
        ds.period
    );

    let cfg = TriadConfig {
        epochs,
        ..Default::default()
    };
    let fitted = TriAd::new(cfg).fit(ds.train()).expect("fit");
    let det = fitted.detect(ds.test());

    // Fig. 11 — per-domain window similarity scores.
    for r in &det.rankings {
        let pts: Vec<(f64, f64)> = r
            .scores
            .iter()
            .enumerate()
            .map(|(i, &s)| (i as f64, s))
            .collect();
        println!(
            "\n# domain {} — most deviant window index: {}",
            r.domain.name(),
            r.top
        );
        print_series(
            &format!("Fig11 window similarity ({})", r.domain.name()),
            "window",
            "mean similarity",
            &pts,
        );
    }

    // Fig. 12 — the discord sweep.
    println!(
        "\n# Fig12 — selected window {:?}, search region {:?}",
        det.selected_window, det.search_region
    );
    let pts: Vec<(f64, f64)> = det
        .discords
        .iter()
        .map(|d| (d.length as f64, d.index as f64))
        .collect();
    print_series(
        "Fig12 discord location vs length",
        "length",
        "start index",
        &pts,
    );

    // Fig. 13 — threshold sweep over vote quantiles.
    println!("\n# Fig13 — precision/recall under vote-threshold percentiles");
    println!("# percentile\tprecision\trecall\tf1");
    let labels = ds.test_labels();
    let positive: Vec<f64> = det.votes.iter().copied().filter(|&v| v > 0.0).collect();
    for pct in [0.0, 0.25, 0.5, 0.75, 0.9, 0.95] {
        let thr = if positive.is_empty() {
            0.0
        } else {
            evalkit::threshold::quantile(&positive, pct)
        };
        let pred: Vec<bool> = det.votes.iter().map(|&v| v > thr).collect();
        let m = prf(&pred, &labels);
        println!("{pct:.2}\t{:.3}\t{:.3}\t{:.3}", m.precision, m.recall, m.f1);
    }
    println!(
        "\n# default (mean-positive-vote) threshold = {:.3}",
        det.threshold
    );
    let m = prf(&det.prediction, &labels);
    println!(
        "# final prediction: P {:.3} R {:.3} F1 {:.3}, fallback = {}",
        m.precision, m.recall, m.f1, det.used_fallback
    );
}
