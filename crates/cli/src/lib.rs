//! Implementation of the `triad` command-line tool.
//!
//! Subcommands (see `triad help` / [`run`]):
//!
//! * `fit`    — train on an anomaly-free series, save the model;
//! * `detect` — train (or load a saved model) and flag the anomalous region
//!   of a test series;
//! * `gen`    — write a synthetic archive dataset in the UCR file format;
//! * `eval`   — score a prediction file against a label file with the full
//!   metric ladder;
//! * `serve`  — run the line-delimited-JSON model server (`triad-serve`);
//! * `client` — one-shot client for a running server;
//! * `stream` — replay a series file as a live feed through the online
//!   engine (`triad-stream`), locally or against a running server.
//!
//! Series files are plain text, one sample per line (whitespace-separated
//! values are also accepted — the UCR archive format).
//!
//! The logic lives in this library crate so it is testable without spawning
//! processes; `main.rs` is a thin wrapper.

#![forbid(unsafe_code)]

mod trace_cmd;

use std::path::{Path, PathBuf};
use std::time::Duration;
use triad_core::{persist, FittedTriad, NumericMode, TriAd, TriadConfig};
use triad_serve::{Client, ServeConfig, Value};
use triad_stream::{checkpoint, StreamConfig, StreamEngine};

/// Parsed command line: `triad <command> [--key value]...`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cli {
    pub command: String,
    pairs: Vec<(String, String)>,
}

impl Cli {
    /// Parse from an argument list (without the program name).
    ///
    /// Flags take a value (`--epochs 3`); a flag followed by another flag or
    /// by nothing is boolean (`--smoke`) and stores an empty value, visible
    /// through [`get`](Cli::get) as `Some("")`.
    pub fn parse(args: &[String]) -> Result<Cli, String> {
        let command = args.first().cloned().ok_or_else(usage)?;
        let mut pairs = Vec::new();
        let mut i = 1;
        while i < args.len() {
            let key = args[i]
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --flag, got {:?}\n{}", args[i], usage()))?;
            match args.get(i + 1) {
                Some(v) if !v.starts_with("--") => {
                    pairs.push((key.to_string(), v.clone()));
                    i += 2;
                }
                _ => {
                    pairs.push((key.to_string(), String::new()));
                    i += 1;
                }
            }
        }
        Ok(Cli { command, pairs })
    }

    pub fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("missing --{key}"))
    }

    pub fn get_num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key}: bad value {v:?}")),
        }
    }
}

/// Usage text.
pub fn usage() -> String {
    "\
triad — self-supervised tri-domain time-series anomaly detection

USAGE:
  triad fit    --train FILE --model FILE [--epochs N] [--seed N] [--threads N]
  triad detect --test FILE (--train FILE [--epochs N] | --model FILE)
               [--labels FILE] [--threads N] [--numeric-mode exact|fast]
  triad gen    --out FILE [--seed N] [--id N]
  triad eval   --pred FILE --labels FILE
  triad serve  [--addr HOST:PORT] [--models DIR] [--workers N] [--executors N]
               [--max-batch N] [--max-delay-ms N] [--cache N] [--threads N]
               [--stream-shards N] [--stream-queue N] [--stream-checkpoints DIR]
               [--fleet-budget BYTES] [--numeric-mode exact|fast]
  triad client --verb VERB [--addr HOST:PORT] [--model NAME]
               [--series FILE] [--train FILE] [--epochs N] [--seed N]
  triad stream --test FILE (--model FILE | --train FILE [--epochs N])
               [--chunk N] [--enter X] [--exit X] [--checkpoint-at N] [--threads N]
               [--numeric-mode exact|fast]
  triad stream --addr HOST:PORT --model NAME --test FILE
               [--stream NAME] [--chunk N]
  triad bench  [--smoke] [--out-dir DIR] [--stages LIST]
               [--numeric-mode exact|fast]
  triad fleet  [--smoke] [--out-dir DIR] [--streams N] [--budget BYTES]
               [--points N] [--numeric-mode exact|fast]
  triad evalbed [--smoke] [--out-dir DIR] [--datasets SPEC] [--methods LIST]
               [--metrics LIST] [--epochs N] [--seed N] [--archive-seed N]
               [--threads N] [--resume] [--no-cache] [--models DIR]
               [--stride-sweep] [--check FILE] [--tolerance X]
               [--numeric-mode exact|fast]
  triad trace  [--smoke] [--out-dir DIR] [--seed N] [--threads N]
  triad lint   [--root DIR] [--json | --sarif] [--deny] [--baseline FILE]
               [--include-vendor] [--fixture]

Series files hold one sample per line (UCR archive format accepted).
`detect` prints the flagged region; with --labels it also prints metrics.
`gen` writes a synthetic dataset named with the UCR convention next to --out.
`serve` blocks until a client sends the shutdown verb; `client` verbs are
health, list, stats (add --format text for the plain-text dump), fit,
detect, evict, shutdown, and the stream.* family — responses print as one
JSON line. --fleet-budget BYTES switches the server's stream tier to the
memory-budgeted fleet: idle streams are LRU-evicted to checkpoints and
rehydrated bit-identically on the next touch, and sustained drift triggers
background refits (0 = fleet tier with no byte cap).
`stream` replays --test as a live feed through the incremental engine in
--chunk-sized pushes (default 64) and prints hysteresis events plus the
final offline-equivalent detection. Without --addr it runs in-process
(--checkpoint-at N saves and restores mid-replay to exercise resume); with
--addr it drives the stream.* verbs of a running server.
--threads N sets the worker count for the parallel runtime (0 = auto,
capped; TRIAD_THREADS overrides the auto choice). Results are bit-identical
at any thread count.
--numeric-mode picks the detection kernels: `exact` (default) keeps the
bit-exact reference ladder, `fast` switches the discord search to the
FFT-backed MASS kernels — same discords within a 1e-6 tolerance, still
bit-identical across thread counts within the mode.
`bench` runs the fixed-seed perf harness (train/detect/stream/discord
workloads at 1/2/4/8 threads, plus a `kernels` micro-stage comparing the
blocked/FFT kernels against scalar references) and writes one
BENCH_<stage>.json per stage into --out-dir (default `.`); the discord
stage always measures both numeric modes; --smoke shrinks the workloads
for CI and --stages narrows to a comma-separated subset.
`fleet` soaks the memory-budgeted fleet tier: opens --streams streams (far
more than --budget resident-engine bytes can hold), pushes an archive-style
workload with a sustained regime shift through them at each sweep thread
count, and writes FLEET_soak.json into --out-dir (default `bench_out`).
Gates: outputs bit-identical across thread counts, published residency
never above budget, and at least one drift-triggered refit completed per
run; --smoke shrinks the soak for CI.
`evalbed` runs the archive-scale evaluation testbed: every selected method ×
every selected dataset × the full evalkit metric suite, scheduled over the
deterministic parallel runtime (bit-identical summaries at any thread
count). Results land as CRC'd JSONL rows in --out-dir (default
`evalbed_out`); --resume skips tasks whose rows are already intact, fitted
TriAD models are cached under --models (default `<out-dir>/models`),
--datasets takes ids and ranges (`1-10,40`), --stride-sweep adds the TriAD
windowing variants, and --check FILE diffs the fresh summary against a
committed baseline — ranking flips or metric drops beyond --tolerance fail
the command. --smoke shrinks everything for CI.
`trace` records a fixed-seed fit/detect/stream workload with structured
tracing on, writes TRACE.jsonl and TRACE_chrome.json (loadable in
chrome://tracing / Perfetto) into --out-dir, validates both, and prints a
per-stage p50/p95/p99 summary with the critical path; --smoke shrinks the
workload and additionally asserts the five pipeline stages are present and
root spans cover ≥ 95% of the trace extent.
`lint` runs the workspace static analyzer (triad-lint): numeric-safety,
panic-hygiene, concurrency, and syntax-aware determinism rules
(nondet-iter, float-reduce-order, ambient-entropy, shadowed-threads) plus
stale-suppression auditing. --deny exits nonzero on any finding, --baseline
FILE drops fingerprinted pre-existing findings so CI fails only on new
ones, --json / --sarif select machine-readable output, and --fixture runs
the seeded-violation self-test instead of a workspace scan.
"
    .to_string()
}

/// Read a series file (one float per line / whitespace separated).
pub fn read_series(path: &Path) -> Result<Vec<f64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path:?}: {e}"))?;
    ucrgen::loader::parse_values(&text)
}

/// Read a 0/1 label file.
pub fn read_labels(path: &Path) -> Result<Vec<bool>, String> {
    Ok(read_series(path)?.into_iter().map(|v| v != 0.0).collect())
}

fn numeric_mode_from(cli: &Cli) -> Result<NumericMode, String> {
    match cli.get("numeric-mode") {
        Some(v) => v.parse(),
        None => Ok(NumericMode::Exact),
    }
}

fn config_from(cli: &Cli) -> Result<TriadConfig, String> {
    Ok(TriadConfig {
        epochs: cli.get_num("epochs", 10usize)?,
        seed: cli.get_num("seed", 0u64)?,
        merlin_step: cli.get_num("merlin-step", 2usize)?,
        threads: cli.get_num("threads", 0usize)?,
        numeric_mode: numeric_mode_from(cli)?,
        ..TriadConfig::default()
    })
}

/// Run one command; returns the lines to print.
pub fn run(cli: &Cli) -> Result<Vec<String>, String> {
    match cli.command.as_str() {
        "fit" => cmd_fit(cli),
        "detect" => cmd_detect(cli),
        "gen" => cmd_gen(cli),
        "eval" => cmd_eval(cli),
        "serve" => cmd_serve(cli),
        "client" => cmd_client(cli),
        "stream" => cmd_stream(cli),
        "bench" => cmd_bench(cli),
        "fleet" => cmd_fleet(cli),
        "evalbed" => cmd_evalbed(cli),
        "lint" => cmd_lint(cli),
        "trace" => trace_cmd::cmd_trace(cli),
        "help" | "--help" | "-h" => Ok(vec![usage()]),
        other => Err(format!("unknown command {other:?}\n{}", usage())),
    }
}

fn cmd_fit(cli: &Cli) -> Result<Vec<String>, String> {
    let train = read_series(Path::new(cli.require("train")?))?;
    let model_path = cli.require("model")?.to_string();
    let fitted = TriAd::new(config_from(cli)?).fit(&train)?;
    persist::save_file(Path::new(&model_path), &fitted).map_err(|e| e.to_string())?;
    Ok(vec![format!(
        "trained: period {}, window {}, {} windows → saved to {}",
        fitted.period(),
        fitted.window_len(),
        fitted.report().n_windows,
        model_path
    )])
}

fn cmd_detect(cli: &Cli) -> Result<Vec<String>, String> {
    let test = read_series(Path::new(cli.require("test")?))?;
    let mut fitted = match (cli.get("model"), cli.get("train")) {
        (Some(m), _) => persist::load_file(Path::new(m)).map_err(|e| e.to_string())?,
        (None, Some(t)) => {
            let train = read_series(Path::new(t))?;
            TriAd::new(config_from(cli)?).fit(&train)?
        }
        (None, None) => return Err("detect needs --model or --train".into()),
    };
    fitted.set_threads(cli.get_num("threads", 0usize)?);
    fitted.set_numeric_mode(numeric_mode_from(cli)?);
    let det = fitted.detect(&test);
    let mut out = vec![
        format!("selected window : {:?}", det.selected_window),
        format!(
            "flagged region  : {:?} ({} points, fallback={})",
            det.predicted_region(),
            det.prediction.iter().filter(|&&b| b).count(),
            det.used_fallback
        ),
    ];
    if let Some(lp) = cli.get("labels") {
        let labels = read_labels(Path::new(lp))?;
        if labels.len() != test.len() {
            return Err("labels/test length mismatch".into());
        }
        let pw = evalkit::pointwise::prf(&det.prediction, &labels);
        let pak = evalkit::pak::pak_auc(&det.prediction, &labels);
        let aff = evalkit::affiliation::affiliation_prf(&det.prediction, &labels);
        out.push(format!(
            "metrics         : F1(PW) {:.3}  PA%K-F1 {:.3}  Aff-F1 {:.3}",
            pw.f1, pak.f1_auc, aff.f1
        ));
    }
    Ok(out)
}

fn cmd_gen(cli: &Cli) -> Result<Vec<String>, String> {
    let out_dir = cli.require("out")?.to_string();
    let seed: u64 = cli.get_num("seed", 7u64)?;
    let id: usize = cli.get_num("id", 1usize)?;
    let ds = ucrgen::archive::generate_dataset(seed, id);
    std::fs::create_dir_all(&out_dir).map_err(|e| e.to_string())?;
    // UCR naming convention: 1-based inclusive anomaly bounds.
    let name = format!(
        "{:03}_UCR_Anomaly_{}_{}_{}_{}.txt",
        ds.id,
        ds.name.replace('_', ""),
        ds.train_end,
        ds.anomaly.start + 1,
        ds.anomaly.end
    );
    let path = Path::new(&out_dir).join(&name);
    let body: Vec<String> = ds.series.iter().map(|v| format!("{v:.6}")).collect();
    std::fs::write(&path, body.join("\n")).map_err(|e| e.to_string())?;
    Ok(vec![format!(
        "wrote {} ({} samples, anomaly {:?}, kind {:?})",
        path.display(),
        ds.series.len(),
        ds.anomaly,
        ds.kind
    )])
}

fn cmd_eval(cli: &Cli) -> Result<Vec<String>, String> {
    let pred = read_labels(Path::new(cli.require("pred")?))?;
    let labels = read_labels(Path::new(cli.require("labels")?))?;
    if pred.len() != labels.len() {
        return Err("pred/labels length mismatch".into());
    }
    let pw = evalkit::pointwise::prf(&pred, &labels);
    let pa = evalkit::pa::prf_pa(&pred, &labels);
    let pak = evalkit::pak::pak_auc(&pred, &labels);
    let aff = evalkit::affiliation::affiliation_prf(&pred, &labels);
    let rng = evalkit::range_pr::range_prf(&pred, &labels);
    Ok(vec![
        format!(
            "F1(PW)      : {:.4} (P {:.4} R {:.4})",
            pw.f1, pw.precision, pw.recall
        ),
        format!("F1(PA)      : {:.4}", pa.f1),
        format!(
            "PA%K AUC    : F1 {:.4} (P {:.4} R {:.4})",
            pak.f1_auc, pak.precision_auc, pak.recall_auc
        ),
        format!(
            "Affiliation : F1 {:.4} (P {:.4} R {:.4})",
            aff.f1, aff.precision, aff.recall
        ),
        format!(
            "Range-based : F1 {:.4} (P {:.4} R {:.4})",
            rng.f1, rng.precision, rng.recall
        ),
    ])
}

/// Default port for `serve`/`client` when `--addr` is omitted.
const DEFAULT_ADDR: &str = "127.0.0.1:7700";

fn cmd_serve(cli: &Cli) -> Result<Vec<String>, String> {
    let cfg = ServeConfig {
        addr: cli.get("addr").unwrap_or(DEFAULT_ADDR).to_string(),
        models_dir: PathBuf::from(cli.get("models").unwrap_or("models")),
        workers: cli.get_num("workers", 4usize)?,
        executors: cli.get_num("executors", 2usize)?,
        max_batch: cli.get_num("max-batch", 16usize)?,
        max_delay_ms: cli.get_num("max-delay-ms", 20u64)?,
        request_timeout_ms: cli.get_num("request-timeout-ms", 30_000u64)?,
        idle_timeout_ms: cli.get_num("idle-timeout-ms", 10_000u64)?,
        cache_capacity: cli.get_num("cache", 8usize)?,
        stream_shards: cli.get_num("stream-shards", 2usize)?,
        stream_queue: cli.get_num("stream-queue", 1024usize)?,
        stream_checkpoint_dir: cli.get("stream-checkpoints").map(PathBuf::from),
        fleet_budget_bytes: match cli.get("fleet-budget") {
            Some(v) => Some(
                v.parse::<u64>()
                    .map_err(|e| format!("--fleet-budget {v:?}: {e}"))?,
            ),
            None => None,
        },
        threads: cli.get_num("threads", 0usize)?,
        numeric_mode: numeric_mode_from(cli)?,
    };
    let models_dir = cfg.models_dir.clone();
    let handle = triad_serve::start(cfg).map_err(|e| format!("serve: {e}"))?;
    // Announce the bound address before blocking (port 0 resolves here) so
    // scripts can parse it and connect.
    println!(
        "triad-serve listening on {} (models in {})",
        handle.addr(),
        models_dir.display()
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    handle.wait();
    Ok(vec!["server drained and stopped".into()])
}

fn cmd_client(cli: &Cli) -> Result<Vec<String>, String> {
    let addr = cli.get("addr").unwrap_or(DEFAULT_ADDR);
    let verb = cli.require("verb")?;
    let timeout = Duration::from_millis(cli.get_num("timeout-ms", 180_000u64)?);
    let mut client = Client::connect(addr, timeout).map_err(|e| format!("connect {addr}: {e}"))?;
    let resp = match verb {
        "health" => client.health(),
        "list" => client.list(),
        "stats" if cli.get("format") == Some("text") => {
            return client
                .stats_text()
                .map(|t| t.lines().map(str::to_string).collect())
                .map_err(|e| format!("stats: {e}"));
        }
        "stats" => client.stats(),
        "evict" => client.evict(cli.require("model")?),
        "shutdown" => client.shutdown(),
        "fit" => {
            let train = read_series(Path::new(cli.require("train")?))?;
            let mut extra: Vec<(&str, Value)> = Vec::new();
            for key in ["epochs", "seed", "merlin_step"] {
                if let Some(v) = cli.get(key) {
                    let n: u64 = v.parse().map_err(|_| format!("--{key}: bad value {v:?}"))?;
                    extra.push((key, Value::Num(n as f64)));
                }
            }
            client.fit(cli.require("model")?, &train, extra)
        }
        "detect" => {
            let series = read_series(Path::new(cli.require("series")?))?;
            client.detect(cli.require("model")?, &series)
        }
        "stream.open" => client.stream_open(cli.require("stream")?, cli.require("model")?),
        "stream.push" => {
            let points = read_series(Path::new(cli.require("series")?))?;
            client.stream_push(cli.require("stream")?, &points)
        }
        "stream.poll" => client.stream_poll(cli.require("stream")?),
        "stream.close" => client.stream_close(cli.require("stream")?),
        "stream.checkpoint" => client.stream_checkpoint(cli.get("stream")),
        "stream.list" => client.stream_list(),
        other => {
            return Err(format!(
                "unknown client verb {other:?} (health, list, stats, fit, detect, evict, \
                 shutdown, stream.open, stream.push, stream.poll, stream.close, \
                 stream.checkpoint, stream.list)"
            ))
        }
    };
    let resp = resp.map_err(|e| format!("{verb}: {e}"))?;
    Ok(vec![resp.to_string()])
}

/// Replay a series file as a live feed. Without `--addr` the feed runs
/// through an in-process [`StreamEngine`]; with `--addr` it drives the
/// `stream.*` verbs of a running server.
fn cmd_stream(cli: &Cli) -> Result<Vec<String>, String> {
    if cli.get("addr").is_some() {
        return cmd_stream_remote(cli);
    }
    let test = read_series(Path::new(cli.require("test")?))?;
    let mut fitted: FittedTriad = match (cli.get("model"), cli.get("train")) {
        (Some(m), _) => persist::load_file(Path::new(m)).map_err(|e| e.to_string())?,
        (None, Some(t)) => {
            let train = read_series(Path::new(t))?;
            TriAd::new(config_from(cli)?).fit(&train)?
        }
        (None, None) => {
            return Err("stream needs --model or --train (or --addr for server mode)".into())
        }
    };
    fitted.set_threads(cli.get_num("threads", 0usize)?);
    fitted.set_numeric_mode(numeric_mode_from(cli)?);
    let chunk = cli.get_num("chunk", 64usize)?.max(1);
    let defaults = StreamConfig::default();
    let cfg = StreamConfig {
        enter: cli.get_num("enter", defaults.enter)?,
        exit: cli.get_num("exit", defaults.exit)?,
        ..defaults
    };
    let checkpoint_at: Option<usize> = match cli.get("checkpoint-at") {
        None => None,
        Some(v) => Some(
            v.parse()
                .map_err(|_| format!("--checkpoint-at: bad value {v:?}"))?,
        ),
    };

    let mut engine = StreamEngine::new(&fitted, cfg);
    let mut out = Vec::new();
    let mut fed = 0usize;
    let mut ckpt_done = false;
    for piece in test.chunks(chunk) {
        for &x in piece {
            // Non-finite samples are rejected by the engine and tallied in
            // its status; the replay just keeps going.
            let _ = engine.push(&fitted, x);
        }
        fed += piece.len();
        if let Some(at) = checkpoint_at {
            if !ckpt_done && fed >= at {
                ckpt_done = true;
                // Save, throw the live engine away, resume from the file —
                // the rest of the replay runs on the restored state.
                let path = std::env::temp_dir()
                    .join(format!("triad_cli_stream_{}.ckpt", std::process::id()));
                checkpoint::save_file(&path, "cli", "cli-model", &engine)
                    .map_err(|e| e.to_string())?;
                engine = checkpoint::load_file(&path)
                    .map_err(|e| e.to_string())?
                    .into_engine(&fitted)
                    .map_err(|e| e.to_string())?;
                let _ = std::fs::remove_file(&path);
                out.push(format!("checkpoint saved + restored at sample {fed}"));
            }
        }
    }

    let status = engine.status();
    out.push(format!(
        "replayed {} samples in chunks of {chunk}: {} windows scored, {} rejected non-finite",
        status.seq, status.windows_scored, status.rejected_nonfinite
    ));
    for ev in &status.events {
        out.push(match ev.end {
            Some(end) => format!(
                "event: [{}, {end}) peak deviance {:.3}",
                ev.start, ev.peak_deviance
            ),
            None => format!(
                "event: [{}, …) still open, peak deviance {:.3}",
                ev.start, ev.peak_deviance
            ),
        });
    }
    if status.events.is_empty() {
        out.push("no hysteresis events".into());
    }
    match engine.finalize(&fitted) {
        Ok(det) => {
            out.push(format!("selected window : {:?}", det.selected_window));
            out.push(format!(
                "flagged region  : {:?} ({} points, fallback={})",
                det.predicted_region(),
                det.prediction.iter().filter(|&&b| b).count(),
                det.used_fallback
            ));
        }
        Err(e) => out.push(format!("finalize unavailable: {e}")),
    }
    Ok(out)
}

/// Server-mode replay: drive `stream.open`/`push`/`poll`/`close` against a
/// running `triad serve`.
fn cmd_stream_remote(cli: &Cli) -> Result<Vec<String>, String> {
    let addr = cli.require("addr")?;
    let model = cli.require("model")?;
    let test = read_series(Path::new(cli.require("test")?))?;
    let name = cli.get("stream").unwrap_or("cli-stream");
    let chunk = cli.get_num("chunk", 64usize)?.max(1);
    let timeout = Duration::from_millis(cli.get_num("timeout-ms", 180_000u64)?);
    let mut client = Client::connect(addr, timeout).map_err(|e| format!("connect {addr}: {e}"))?;

    client
        .stream_open(name, model)
        .map_err(|e| format!("stream.open: {e}"))?;
    let mut resent = 0u64;
    for piece in test.chunks(chunk) {
        // A full shard queue sheds the chunk (explicit backpressure); a
        // replay wants every point, so back off and resend.
        let mut tries = 0;
        loop {
            let ticket = client
                .stream_push(name, piece)
                .map_err(|e| format!("stream.push: {e}"))?;
            if ticket.get("queued").and_then(Value::as_bool) == Some(true) {
                break;
            }
            resent += 1;
            tries += 1;
            if tries > 600 {
                return Err("stream.push: shard queue stayed full".into());
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }
    // Wait for the shard to drain the replay before closing.
    let want = test.len() as u64;
    let mut drained = false;
    for _ in 0..6000 {
        let polled = client
            .stream_poll(name)
            .map_err(|e| format!("stream.poll: {e}"))?;
        if polled.get("seq").and_then(Value::as_u64).unwrap_or(0)
            + polled
                .get("rejected_nonfinite")
                .and_then(Value::as_u64)
                .unwrap_or(0)
            >= want
        {
            drained = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    if !drained {
        return Err(format!("stream {name:?} never drained {want} samples"));
    }
    let closed = client
        .stream_close(name)
        .map_err(|e| format!("stream.close: {e}"))?;
    let mut out = vec![format!(
        "replayed {} samples to {addr} as stream {name:?} ({} chunks resent under backpressure)",
        test.len(),
        resent
    )];
    out.push(closed.to_string());
    Ok(out)
}

/// Run the fixed-seed perf harness (`crates/bench::perf`) and report where
/// each `BENCH_<stage>.json` landed.
fn cmd_bench(cli: &Cli) -> Result<Vec<String>, String> {
    let stages: Vec<String> = match cli.get("stages") {
        None | Some("") => Vec::new(),
        Some(s) => s
            .split(',')
            .map(|t| t.trim().to_string())
            .filter(|t| !t.is_empty())
            .collect(),
    };
    let opts = bench::perf::BenchOptions {
        smoke: cli.get("smoke").is_some(),
        out_dir: PathBuf::from(cli.get("out-dir").unwrap_or(".")),
        stages,
        numeric_mode: numeric_mode_from(cli)?,
    };
    bench::perf::run_bench(&opts)
}

/// Soak the fleet tier under a byte budget (`crates/bench::fleet`) and
/// report where `FLEET_soak.json` landed.
fn cmd_fleet(cli: &Cli) -> Result<Vec<String>, String> {
    let opts = bench::fleet::FleetOptions {
        smoke: cli.get("smoke").is_some(),
        out_dir: PathBuf::from(cli.get("out-dir").unwrap_or("bench_out")),
        streams: cli.get_num("streams", 0usize)?,
        budget_bytes: cli.get_num("budget", 0usize)?,
        points: cli.get_num("points", 0usize)?,
        numeric_mode: numeric_mode_from(cli)?,
    };
    bench::fleet::run_fleet(&opts)
}

/// Run the archive-scale evaluation testbed (`crates/evalbed`).
fn cmd_evalbed(cli: &Cli) -> Result<Vec<String>, String> {
    let out_dir = PathBuf::from(cli.get("out-dir").unwrap_or("evalbed_out"));
    let mut opts = if cli.get("smoke").is_some() {
        evalbed::EvalbedOptions::smoke(out_dir)
    } else {
        evalbed::EvalbedOptions::full(out_dir)
    };
    if let Some(spec) = cli.get("datasets") {
        opts.datasets = evalbed::parse_dataset_spec(spec, 250)?;
    }
    if let Some(spec) = cli.get("methods") {
        opts.methods = evalbed::parse_name_list(spec);
    }
    if let Some(spec) = cli.get("metrics") {
        opts.metrics = evalbed::parse_name_list(spec);
    }
    opts.epochs = cli.get_num("epochs", opts.epochs)?;
    opts.seed = cli.get_num("seed", opts.seed)?;
    opts.archive_seed = cli.get_num("archive-seed", opts.archive_seed)?;
    opts.threads = cli.get_num("threads", 0usize)?;
    opts.tolerance = cli.get_num("tolerance", opts.tolerance)?;
    opts.resume = cli.get("resume").is_some();
    opts.no_cache = cli.get("no-cache").is_some();
    opts.stride_sweep = cli.get("stride-sweep").is_some();
    opts.models_dir = cli.get("models").map(PathBuf::from);
    opts.check = cli.get("check").map(PathBuf::from);
    opts.numeric_mode = numeric_mode_from(cli)?;

    let outcome = evalbed::run(&opts)?;
    let mut out = vec![
        format!(
            "evalbed : {} methods × {} datasets — {} executed, {} resumed, {} cached fits reused",
            outcome.summary.methods.len(),
            outcome.summary.dataset_ids.len(),
            outcome.executed,
            outcome.resumed,
            outcome.models_reused
        ),
        format!("rows    : {}", outcome.rows_path.display()),
        format!("summary : {}", outcome.summary_path.display()),
        format!("report  : {}", outcome.markdown_path.display()),
        format!("ranking : {}", outcome.summary.ranking.join(" > ")),
    ];
    if outcome.skipped_lines > 0 {
        out.push(format!(
            "warning : skipped {} damaged/duplicate result lines",
            outcome.skipped_lines
        ));
    }
    if let Some(baseline) = &opts.check {
        if outcome.regressions.is_empty() {
            out.push(format!("gate    : PASS vs {}", baseline.display()));
        } else {
            return Err(format!(
                "regression gate FAILED vs {}:\n  {}",
                baseline.display(),
                outcome.regressions.join("\n  ")
            ));
        }
    }
    Ok(out)
}

/// Workspace root for `lint`: `--root` wins; otherwise the current
/// directory when it looks like the workspace (`cargo run` puts us there),
/// otherwise the compile-time manifest's grandparent (installed binary).
fn lint_root(cli: &Cli) -> PathBuf {
    if let Some(r) = cli.get("root") {
        return PathBuf::from(r);
    }
    let cwd = PathBuf::from(".");
    if cwd.join("Cargo.toml").exists() && cwd.join("crates").exists() {
        return cwd;
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(|p| p.to_path_buf())
        .unwrap_or(cwd)
}

fn cmd_lint(cli: &Cli) -> Result<Vec<String>, String> {
    if cli.get("json").is_some() && cli.get("sarif").is_some() {
        return Err("--json and --sarif are mutually exclusive".to_string());
    }

    if cli.get("fixture").is_some() {
        let dir = lint_root(cli).join("crates/lint/fixtures");
        let outcome = triad_lint::fixture_self_test(&dir)
            .map_err(|e| format!("fixture self-test failed to run: {e}"))?;
        if !outcome.passed {
            return Err(outcome.report);
        }
        return Ok(vec![outcome.report.trim_end().to_string()]);
    }

    let root = lint_root(cli);
    let opts = triad_lint::Options {
        include_vendor: cli.get("include-vendor").is_some(),
    };
    let mut reports = triad_lint::run(&root, &opts)
        .map_err(|e| format!("failed to lint {}: {e}", root.display()))?;

    if let Some(path) = cli.get("baseline") {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("failed to read {path}: {e}"))?;
        let set = triad_lint::baseline::parse(&text).map_err(|e| format!("{path}: {e}"))?;
        triad_lint::baseline::apply(&mut reports, &set);
    }

    let n: usize = reports.iter().map(|r| r.diagnostics.len()).sum();
    let rendered = if cli.get("json").is_some() {
        triad_lint::engine::render_json(&reports)
    } else if cli.get("sarif").is_some() {
        triad_lint::sarif::render(&reports)
    } else {
        triad_lint::engine::render_human(&reports)
    };
    if cli.get("deny").is_some() && n > 0 {
        return Err(format!(
            "{}lint: {} finding{} (--deny)",
            rendered,
            n,
            if n == 1 { "" } else { "s" }
        ));
    }
    Ok(vec![rendered.trim_end().to_string()])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|v| v.to_string()).collect()
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("triad_cli_{tag}"));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn parse_and_flags() {
        let cli = Cli::parse(&argv(&["detect", "--test", "t.txt", "--epochs", "3"])).unwrap();
        assert_eq!(cli.command, "detect");
        assert_eq!(cli.get("test"), Some("t.txt"));
        assert_eq!(cli.get_num("epochs", 0usize).unwrap(), 3);
        assert_eq!(cli.get_num("seed", 9u64).unwrap(), 9);
        assert!(cli.require("missing").is_err());
        assert!(Cli::parse(&argv(&[])).is_err());
        assert!(Cli::parse(&argv(&["x", "notflag"])).is_err());
        // Boolean flags: trailing or followed by another flag.
        let cli = Cli::parse(&argv(&["x", "--flag"])).unwrap();
        assert_eq!(cli.get("flag"), Some(""));
        let cli = Cli::parse(&argv(&["x", "--smoke", "--out-dir", "d"])).unwrap();
        assert_eq!(cli.get("smoke"), Some(""));
        assert_eq!(cli.get("out-dir"), Some("d"));
    }

    #[test]
    fn lint_verb_fixture_pass_and_workspace_clean() {
        let cli = Cli::parse(&argv(&["lint", "--fixture"])).unwrap();
        let out = run(&cli).unwrap();
        assert!(out[0].contains("PASS"), "{}", out[0]);
        let cli = Cli::parse(&argv(&["lint", "--deny"])).unwrap();
        let out = run(&cli).expect("workspace lints clean under --deny");
        assert!(out[0].contains("0 diagnostics"), "{}", out[0]);
        let cli = Cli::parse(&argv(&["lint", "--json", "--sarif"])).unwrap();
        assert!(run(&cli).is_err());
    }

    #[test]
    fn unknown_command_and_help() {
        let cli = Cli::parse(&argv(&["bogus"])).unwrap();
        assert!(run(&cli).is_err());
        let cli = Cli::parse(&argv(&["help"])).unwrap();
        assert!(run(&cli).unwrap()[0].contains("USAGE"));
    }

    #[test]
    fn gen_then_fit_then_detect_end_to_end() {
        let dir = tmpdir("e2e");
        // gen
        let cli = Cli::parse(&argv(&[
            "gen",
            "--out",
            dir.to_str().unwrap(),
            "--seed",
            "7",
            "--id",
            "3",
        ]))
        .unwrap();
        let out = run(&cli).unwrap();
        assert!(out[0].contains("wrote"));
        // Find the generated file and split it into train/test by its own
        // metadata (exercising the loader path).
        let file = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .find(|e| e.file_name().to_string_lossy().starts_with("003_"))
            .unwrap()
            .path();
        let ds = ucrgen::loader::load_file(&file).unwrap();
        let train_p = dir.join("train.txt");
        let test_p = dir.join("test.txt");
        let fmt = |s: &[f64]| {
            s.iter()
                .map(|v| format!("{v:.6}"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        std::fs::write(&train_p, fmt(ds.train())).unwrap();
        std::fs::write(&test_p, fmt(ds.test())).unwrap();
        let labels_p = dir.join("labels.txt");
        let labels: Vec<String> = ds
            .test_labels()
            .iter()
            .map(|&b| if b { "1" } else { "0" }.to_string())
            .collect();
        std::fs::write(&labels_p, labels.join("\n")).unwrap();

        // fit
        let model_p = dir.join("model.triad");
        let cli = Cli::parse(&argv(&[
            "fit",
            "--train",
            train_p.to_str().unwrap(),
            "--model",
            model_p.to_str().unwrap(),
            "--epochs",
            "3",
        ]))
        .unwrap();
        let out = run(&cli).unwrap();
        assert!(out[0].contains("saved"), "{out:?}");

        // detect from the saved model, with metrics
        let cli = Cli::parse(&argv(&[
            "detect",
            "--test",
            test_p.to_str().unwrap(),
            "--model",
            model_p.to_str().unwrap(),
            "--labels",
            labels_p.to_str().unwrap(),
        ]))
        .unwrap();
        let out = run(&cli).unwrap();
        assert!(out.iter().any(|l| l.contains("flagged region")), "{out:?}");
        assert!(out.iter().any(|l| l.contains("F1(PW)")), "{out:?}");
        let offline_region = out
            .iter()
            .find(|l| l.contains("flagged region"))
            .unwrap()
            .clone();

        // stream replay of the same test file from the same saved model,
        // with a mid-run checkpoint/restore: the final detection must match
        // the offline `detect` line exactly.
        let cli = Cli::parse(&argv(&[
            "stream",
            "--test",
            test_p.to_str().unwrap(),
            "--model",
            model_p.to_str().unwrap(),
            "--chunk",
            "50",
            "--checkpoint-at",
            "150",
        ]))
        .unwrap();
        let out = run(&cli).unwrap();
        assert!(
            out.iter()
                .any(|l| l.contains("checkpoint saved + restored at sample 150")),
            "{out:?}"
        );
        assert!(
            out.iter().any(|l| l == &offline_region),
            "streamed region differs from offline detect: {out:?} vs {offline_region}"
        );

        // eval: perfect prediction scores 1.0 everywhere.
        let cli = Cli::parse(&argv(&[
            "eval",
            "--pred",
            labels_p.to_str().unwrap(),
            "--labels",
            labels_p.to_str().unwrap(),
        ]))
        .unwrap();
        let out = run(&cli).unwrap();
        assert!(out[0].contains("1.0000"), "{out:?}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn detect_requires_source() {
        let dir = tmpdir("nosrc");
        let test_p = dir.join("t.txt");
        std::fs::write(&test_p, "1.0\n2.0\n").unwrap();
        let cli = Cli::parse(&argv(&["detect", "--test", test_p.to_str().unwrap()])).unwrap();
        assert!(run(&cli).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
