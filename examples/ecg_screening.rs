//! ECG screening — the health-surveillance scenario from the paper's intro
//! (sleep-apnea-style recordings), showcasing TriAD's interpretability: the
//! per-domain similarity rankings say *which view* of the signal flagged the
//! beat.
//!
//! ```sh
//! cargo run --release --example ecg_screening
//! ```

use triad_core::{TriAd, TriadConfig};
use ucrgen::anomaly::{inject, AnomalyKind};
use ucrgen::signal::{SignalFamily, SignalSpec};

fn main() {
    // An ECG-like pulse train; one run of beats loses its secondary bump
    // (a contextual anomaly — the shape is distorted, not the amplitude).
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(21);
    let spec = SignalSpec {
        family: SignalFamily::EcgLike,
        period: 50,
        noise: 0.03,
        drift: 0.0,
        am_depth: 0.0,
        phase: 0.0,
    };
    let mut series = spec.generate(&mut rng, 2800);
    let anomaly_full = 2300..2450;
    let sigma = tsops::stats::std_dev(&series[..2000]);
    inject(
        &mut rng,
        &mut series,
        anomaly_full.clone(),
        AnomalyKind::Contextual,
        sigma,
        50,
    );
    let (train, test) = series.split_at(2000);
    let anomaly = anomaly_full.start - 2000..anomaly_full.end - 2000;
    println!(
        "ECG-like recording: {} training beats, anomaly at test {:?}",
        train.len() / 50,
        anomaly
    );

    let cfg = TriadConfig {
        epochs: 6,
        merlin_step: 2,
        ..Default::default()
    };
    let fitted = TriAd::new(cfg).fit(train).expect("fit");
    let det = fitted.detect(test);

    // Interpretability: which domain saw it?
    println!("\nper-domain most-deviant windows:");
    for r in &det.rankings {
        let range = r.top * fitted.segmenter().stride
            ..r.top * fitted.segmenter().stride + fitted.window_len();
        let sim = r.scores[r.top];
        let hit = range.start < anomaly.end && range.end > anomaly.start;
        println!(
            "  {:<9} window #{:<3} ({:>5}..{:<5}) mean-sim {:.3} {}",
            r.domain.name(),
            r.top,
            range.start,
            range.end,
            sim,
            if hit { "← contains the anomaly" } else { "" }
        );
    }
    println!(
        "\nselected window {:?}; {} discord lengths probed",
        det.selected_window,
        det.discords.len()
    );

    let labels: Vec<bool> = (0..test.len()).map(|i| anomaly.contains(&i)).collect();
    let aff = evalkit::affiliation::affiliation_prf(&det.prediction, &labels);
    println!(
        "affiliation P {:.3} / R {:.3} / F1 {:.3}",
        aff.precision, aff.recall, aff.f1
    );
}
