//! Quickstart: train TriAD on an anomaly-free split, detect the single
//! anomalous event in the test split, and score the prediction.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use triad_core::{TriAd, TriadConfig};
use ucrgen::archive::generate_dataset;

fn main() {
    // One dataset from the synthetic UCR-style archive: a periodic signal
    // whose test split hides a single anomaly.
    let ds = generate_dataset(7, 13);
    println!(
        "dataset {} — train {} pts, test {} pts, anomaly {:?} ({:?})",
        ds.name,
        ds.train().len(),
        ds.test().len(),
        ds.anomaly_in_test(),
        ds.kind
    );

    // The paper's defaults are TriadConfig::default(); epochs reduced here
    // so the example runs in seconds.
    let cfg = TriadConfig {
        epochs: 6,
        merlin_step: 2,
        ..Default::default()
    };
    let fitted = TriAd::new(cfg).fit(ds.train()).expect("trainable series");
    println!(
        "trained: period {} → window {} ({} windows), final loss {:.4}",
        fitted.period(),
        fitted.window_len(),
        fitted.report().n_windows,
        fitted.report().epoch_losses.last().unwrap()
    );

    let det = fitted.detect(ds.test());
    println!("candidate windows : {:?}", det.candidates);
    println!("selected window   : {:?}", det.selected_window);
    println!("discords found    : {}", det.discords.len());
    println!("predicted region  : {:?}", det.predicted_region());

    let labels = ds.test_labels();
    let aff = evalkit::affiliation::affiliation_prf(&det.prediction, &labels);
    let pak = evalkit::pak::pak_auc(&det.prediction, &labels);
    println!(
        "affiliation P/R/F1: {:.3}/{:.3}/{:.3}   PA%K F1-AUC: {:.3}",
        aff.precision, aff.recall, aff.f1, pak.f1_auc
    );
}
