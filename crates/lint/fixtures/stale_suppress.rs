//@ path: crates/core/src/fixture.rs
//@ expect: stale-suppression
// Seeded violation: the suppression below outlived the `.unwrap()` it once
// excused — the call was rewritten to a total method, the comment stayed.
pub fn head(xs: &[u64]) -> u64 {
    // lint-allow(no-unwrap): slice is never empty at this call site
    xs.first().copied().unwrap_or(0)
}
