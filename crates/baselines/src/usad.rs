//! USAD — UnSupervised Anomaly Detection (Audibert et al., KDD 2020).
//!
//! Two autoencoders share an encoder `E`; decoder `D₁` reconstructs the
//! input, decoder `D₂` additionally learns to reconstruct `D₁`'s output in an
//! adversarial game: AE₁ minimises `‖W − D₂(E(D₁(E(W))))‖` while AE₂
//! maximises it. With `n` the epoch index, the two objectives are
//!
//! ```text
//! L₁ = (1/n)·‖W − W₁‖² + (1 − 1/n)·‖W − W₂'‖²
//! L₂ = (1/n)·‖W − W₂‖² − (1 − 1/n)·‖W − W₂'‖²
//! ```
//!
//! and the anomaly score is `α‖w − W₁‖² + β‖w − W₂'‖²` (α = β = ½ here).
//! The characteristic Table III behaviour this preserves: very high recall,
//! weak precision (USAD flags broadly).

use crate::common::{make_segmenter, scatter_pointwise, znorm_windows};
use crate::Detector;
use neuro::graph::{Graph, NodeId, Param};
use neuro::layers::Linear;
use neuro::optim::Adam;
use neuro::Tensor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// USAD configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UsadConfig {
    /// Latent dimension.
    pub latent: usize,
    /// Hidden layer width of encoder/decoders.
    pub hidden: usize,
    pub epochs: usize,
    pub batch: usize,
    pub lr: f64,
    pub seed: u64,
    /// Score blend weights (α, β).
    pub alpha_beta: (f64, f64),
}

impl Default for UsadConfig {
    fn default() -> Self {
        UsadConfig {
            latent: 16,
            hidden: 48,
            epochs: 10,
            batch: 8,
            lr: 1e-3,
            seed: 0,
            alpha_beta: (0.5, 0.5),
        }
    }
}

pub struct Usad {
    pub cfg: UsadConfig,
}

impl Usad {
    pub fn new(cfg: UsadConfig) -> Self {
        Usad { cfg }
    }
}

struct Mlp {
    l1: Linear,
    l2: Linear,
}

impl Mlp {
    fn new(rng: &mut StdRng, d_in: usize, d_hidden: usize, d_out: usize) -> Self {
        Mlp {
            l1: Linear::new_relu(rng, d_in, d_hidden),
            l2: Linear::new(rng, d_hidden, d_out),
        }
    }

    fn forward(&self, g: &mut Graph, x: NodeId) -> NodeId {
        let h = self.l1.forward(g, x);
        let h = g.relu(h);
        self.l2.forward(g, h)
    }

    fn params(&self) -> Vec<Param> {
        let mut p = self.l1.params();
        p.extend(self.l2.params());
        p
    }
}

struct Net {
    encoder: Mlp,
    dec1: Mlp,
    dec2: Mlp,
}

impl Net {
    fn new(rng: &mut StdRng, l: usize, cfg: &UsadConfig) -> Self {
        Net {
            encoder: Mlp::new(rng, l, cfg.hidden, cfg.latent),
            dec1: Mlp::new(rng, cfg.latent, cfg.hidden, l),
            dec2: Mlp::new(rng, cfg.latent, cfg.hidden, l),
        }
    }

    /// `(W₁, W₂, W₂')` reconstruction nodes for a batch node `x`.
    fn forwards(&self, g: &mut Graph, x: NodeId) -> (NodeId, NodeId, NodeId) {
        let z = self.encoder.forward(g, x);
        let w1 = self.dec1.forward(g, z);
        let w2 = self.dec2.forward(g, z);
        let z1 = self.encoder.forward(g, w1);
        let w2p = self.dec2.forward(g, z1);
        (w1, w2, w2p)
    }
}

fn mse(g: &mut Graph, a: NodeId, b: NodeId) -> NodeId {
    let d = g.sub(a, b);
    let sq = g.square(d);
    g.mean_all(sq)
}

impl Detector for Usad {
    fn name(&self) -> String {
        "USAD".into()
    }

    fn score(&mut self, train: &[f64], test: &[f64]) -> Vec<f64> {
        let seg = make_segmenter(train);
        let (_, slices) = znorm_windows(train, &seg);
        let l = slices.first().map(|s| s.len()).unwrap_or(seg.window);
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        let net = Net::new(&mut rng, l, &self.cfg);

        let mut ae1_params = net.encoder.params();
        ae1_params.extend(net.dec1.params());
        let mut ae2_params = net.encoder.params();
        ae2_params.extend(net.dec2.params());
        let mut opt1 = Adam::new(ae1_params, self.cfg.lr as f32);
        let mut opt2 = Adam::new(ae2_params, self.cfg.lr as f32);

        let mut idxs: Vec<usize> = (0..slices.len()).collect();
        for epoch in 1..=self.cfg.epochs {
            let inv_n = 1.0 / epoch as f32;
            idxs.shuffle(&mut rng);
            for chunk in idxs.chunks(self.cfg.batch) {
                let batch = stack(&slices, chunk);

                // AE₁ objective.
                {
                    let mut g = Graph::new();
                    let x = g.input(batch.clone());
                    let (w1, _, w2p) = net.forwards(&mut g, x);
                    let m1 = mse(&mut g, x, w1);
                    let m2p = mse(&mut g, x, w2p);
                    let a = g.scale(m1, inv_n);
                    let b = g.scale(m2p, 1.0 - inv_n);
                    let loss = g.add(a, b);
                    if g.value(loss).item().is_finite() {
                        g.backward(loss);
                        opt1.step();
                    } else {
                        opt1.zero_grad();
                    }
                }
                // AE₂ objective (adversarial minus term).
                {
                    let mut g = Graph::new();
                    let x = g.input(batch.clone());
                    let (_, w2, w2p) = net.forwards(&mut g, x);
                    let m2 = mse(&mut g, x, w2);
                    let m2p = mse(&mut g, x, w2p);
                    let a = g.scale(m2, inv_n);
                    let b = g.scale(m2p, -(1.0 - inv_n));
                    let loss = g.add(a, b);
                    if g.value(loss).item().is_finite() {
                        g.backward(loss);
                        opt2.step();
                    } else {
                        opt2.zero_grad();
                    }
                }
            }
        }

        // Scoring: per-point α·(w−W₁)² + β·(w−W₂')².
        let (windows, tslices) = znorm_windows(test, &seg);
        let (alpha, beta) = self.cfg.alpha_beta;
        let mut per_window = Vec::with_capacity(tslices.len());
        for chunk_idx in (0..tslices.len()).collect::<Vec<_>>().chunks(32) {
            // Test windows can differ in length from training (short test
            // splits); USAD's MLP is fixed-width, so resample if needed.
            let resized: Vec<Vec<f64>> = chunk_idx
                .iter()
                .map(|&i| {
                    if tslices[i].len() == l {
                        tslices[i].clone()
                    } else {
                        tsaug::classic::resample_linear(&tslices[i], l)
                    }
                })
                .collect();
            let batch = stack(&resized, &(0..resized.len()).collect::<Vec<_>>());
            let mut g = Graph::new();
            let x = g.input(batch);
            let (w1, _, w2p) = net.forwards(&mut g, x);
            let (v1, v2p) = (g.value(w1).clone(), g.value(w2p).clone());
            for (row, &wi) in chunk_idx.iter().enumerate() {
                let orig_len = tslices[wi].len();
                let errs_l: Vec<f64> = (0..l)
                    .map(|t| {
                        let xv = resized[row][t];
                        let e1 = xv - v1.at2(row, t) as f64;
                        let e2 = xv - v2p.at2(row, t) as f64;
                        alpha * e1 * e1 + beta * e2 * e2
                    })
                    .collect();
                let errs = if orig_len == l {
                    errs_l
                } else {
                    tsaug::classic::resample_linear(&errs_l, orig_len)
                };
                per_window.push(errs);
            }
        }
        scatter_pointwise(&windows, &per_window, test.len())
    }
}

fn stack(slices: &[Vec<f64>], idxs: &[usize]) -> Tensor {
    let l = slices[idxs[0]].len();
    let mut data = Vec::with_capacity(idxs.len() * l);
    for &i in idxs {
        data.extend(slices[i].iter().map(|&v| v as f32));
    }
    Tensor::from_vec(&[idxs.len(), l], data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn quick() -> UsadConfig {
        UsadConfig {
            latent: 6,
            hidden: 16,
            epochs: 4,
            batch: 4,
            ..Default::default()
        }
    }

    fn dataset() -> (Vec<f64>, Vec<f64>, std::ops::Range<usize>) {
        let p = 25.0;
        let full: Vec<f64> = (0..900).map(|i| (2.0 * PI * i as f64 / p).sin()).collect();
        let mut test = full[500..].to_vec();
        for i in 180..230 {
            test[i] += 1.5; // level shift
        }
        (full[..500].to_vec(), test, 180..230)
    }

    #[test]
    fn scores_shape_and_finiteness() {
        let (train, test, _) = dataset();
        let s = Usad::new(quick()).score(&train, &test);
        assert_eq!(s.len(), test.len());
        assert!(s.iter().all(|v| v.is_finite() && *v >= 0.0));
    }

    #[test]
    fn anomaly_region_scores_higher() {
        let (train, test, anom) = dataset();
        let s = Usad::new(quick()).score(&train, &test);
        let in_mean: f64 = s[anom.clone()].iter().sum::<f64>() / anom.len() as f64;
        let out: Vec<f64> = s
            .iter()
            .enumerate()
            .filter(|(i, _)| !anom.contains(i))
            .map(|(_, &v)| v)
            .collect();
        let out_mean: f64 = out.iter().sum::<f64>() / out.len() as f64;
        assert!(in_mean > out_mean, "anomaly {in_mean} vs normal {out_mean}");
    }

    #[test]
    fn deterministic_per_seed() {
        let (train, test, _) = dataset();
        let a = Usad::new(quick()).score(&train, &test);
        let b = Usad::new(quick()).score(&train, &test);
        assert_eq!(a, b);
    }
}
