//! End-to-end checks: the seeded fixtures trip every rule, and the real
//! workspace is clean — which makes `cargo test` itself a lint gate.

use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    // crates/lint -> crates -> workspace root
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("manifest dir has a workspace root two levels up")
        .to_path_buf()
}

#[test]
fn fixtures_trip_every_rule() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let outcome = triad_lint::fixture_self_test(&dir).expect("fixtures readable");
    assert!(outcome.passed, "{}", outcome.report);
    assert!(outcome.total_diagnostics > 0);
}

#[test]
fn fixtures_are_nonzero_under_deny() {
    // `--deny` over the fixture tree must find unsuppressed diagnostics —
    // this is the behaviour scripts/ci.sh asserts with a negated run.
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let reports =
        triad_lint::run(&dir, &triad_lint::Options::default()).expect("fixtures readable");
    let n: usize = reports.iter().map(|r| r.diagnostics.len()).sum();
    assert!(n > 0, "seeded fixtures should produce diagnostics");
}

#[test]
fn workspace_is_clean() {
    let reports = triad_lint::run(&workspace_root(), &triad_lint::Options::default())
        .expect("workspace readable");
    let n: usize = reports.iter().map(|r| r.diagnostics.len()).sum();
    assert_eq!(
        n,
        0,
        "workspace must lint clean:\n{}",
        triad_lint::engine::render_human(&reports)
    );
}

#[test]
fn json_output_is_parseable_shape() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let reports =
        triad_lint::run(&dir, &triad_lint::Options::default()).expect("fixtures readable");
    let json = triad_lint::engine::render_json(&reports);
    assert!(json.trim_start().starts_with('['));
    assert!(json.trim_end().ends_with(']'));
    assert!(json.contains("\"rule\":"));
    assert!(json.contains("\"line\":"));
}
