//! Offline stand-in for the `crossbeam` crate.
//!
//! Two pieces, matching what this workspace uses:
//!
//! * [`scope`] — crossbeam-style scoped threads, implemented over
//!   `std::thread::scope` (the std API subsumed crossbeam's; the wrapper
//!   keeps crossbeam's `scope(|s| { s.spawn(|_| …) })` call shape and
//!   `Result` return).
//! * [`channel`] — a multi-producer **multi-consumer** channel
//!   (`std::sync::mpsc` is single-consumer), used by `triad-serve` as its
//!   thread-pool work queue. Mutex + condvar ring; supports unbounded and
//!   bounded capacity, blocking/timeout receive, and disconnect semantics.

use std::any::Any;

/// Scoped-thread handle passed to `scope`'s closure.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a thread bound to the scope. As in crossbeam, the closure
    /// receives the scope again so it can spawn siblings.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let handle = Scope { inner: self.inner };
        self.inner.spawn(move || f(&handle))
    }
}

/// Create a scope for spawning borrowing threads; joins them all on exit.
///
/// Unlike `std::thread::scope`, returns `Err` with the panic payload if the
/// closure's threads panicked (crossbeam's contract), rather than resuming
/// the unwind — callers here `.expect()` it either way.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    struct Inner<T> {
        queue: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    /// Sending half; clonable (multi-producer).
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; clonable (multi-consumer).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The bounded channel is at capacity.
        Full(T),
        /// All receivers are gone.
        Disconnected(T),
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    /// Channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Channel holding at most `cap` in-flight messages (senders block).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap.max(1)))
    }

    fn with_capacity<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().unwrap();
            inner.senders -= 1;
            if inner.senders == 0 {
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().unwrap().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().unwrap();
            inner.receivers -= 1;
            if inner.receivers == 0 {
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Block until the message is queued (or all receivers are gone).
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.inner.lock().unwrap();
            loop {
                if inner.receivers == 0 {
                    return Err(SendError(value));
                }
                let full = inner.cap.is_some_and(|c| inner.queue.len() >= c);
                if !full {
                    inner.queue.push_back(value);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                inner = self.shared.not_full.wait(inner).unwrap();
            }
        }

        /// Non-blocking send: `Full` instead of waiting when a bounded
        /// channel is at capacity (the caller decides whether to drop,
        /// retry, or shed load).
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut inner = self.shared.inner.lock().unwrap();
            if inner.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if inner.cap.is_some_and(|c| inner.queue.len() >= c) {
                return Err(TrySendError::Full(value));
            }
            inner.queue.push_back(value);
            self.shared.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives (or all senders are gone and the
        /// queue is drained).
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.inner.lock().unwrap();
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.shared.not_empty.wait(inner).unwrap();
            }
        }

        /// `recv` with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut inner = self.shared.inner.lock().unwrap();
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _res) = self
                    .shared
                    .not_empty
                    .wait_timeout(inner, deadline - now)
                    .unwrap();
                inner = guard;
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.shared.inner.lock().unwrap();
            if let Some(v) = inner.queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if inner.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        pub fn len(&self) -> usize {
            self.shared.inner.lock().unwrap().queue.len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn scope_joins_and_borrows() {
        let data = vec![1u64, 2, 3, 4];
        let total = AtomicUsize::new(0);
        scope(|s| {
            for chunk in data.chunks(2) {
                s.spawn(|_| {
                    let sum: u64 = chunk.iter().sum();
                    total.fetch_add(sum as usize, Ordering::Relaxed);
                });
            }
        })
        .expect("no panics");
        assert_eq!(total.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn scope_reports_panics_as_err() {
        let r = scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn mpmc_distributes_all_messages() {
        let (tx, rx) = channel::unbounded::<usize>();
        let done = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let rx = rx.clone();
                let done = &done;
                s.spawn(move || {
                    while let Ok(v) = rx.recv() {
                        done.fetch_add(v, Ordering::Relaxed);
                    }
                });
            }
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
        });
        assert_eq!(done.load(Ordering::Relaxed), 99 * 100 / 2);
    }

    #[test]
    fn bounded_blocks_then_drains() {
        let (tx, rx) = channel::bounded::<u32>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let t = std::thread::spawn(move || {
            tx.send(3).unwrap(); // blocks until a recv frees a slot
            tx
        });
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv().unwrap(), 1);
        let tx = t.join().unwrap();
        assert_eq!(rx.recv().unwrap(), 2);
        assert_eq!(rx.recv().unwrap(), 3);
        drop(tx);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn try_send_sheds_load_when_full() {
        let (tx, rx) = channel::bounded::<u32>(1);
        assert!(tx.try_send(1).is_ok());
        assert!(matches!(
            tx.try_send(2),
            Err(channel::TrySendError::Full(2))
        ));
        assert_eq!(rx.recv().unwrap(), 1);
        assert!(tx.try_send(3).is_ok());
        drop(rx);
        assert!(matches!(
            tx.try_send(4),
            Err(channel::TrySendError::Disconnected(4))
        ));
    }

    #[test]
    fn recv_timeout_times_out_and_disconnects() {
        let (tx, rx) = channel::unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(channel::RecvTimeoutError::Timeout)
        );
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(9));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(channel::RecvTimeoutError::Disconnected)
        );
    }
}
