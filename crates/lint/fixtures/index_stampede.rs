//@ path: crates/neuro/src/fixture.rs
//@ expect: index-stampede
// Seeded violation: four panicking subscripts on one line.
pub fn axpy(a: &mut [f32], b: &[f32], c: &[f32], i: usize) {
    a[i] = b[i] * c[i] + a[i];
}
