//! Contrastive training loop (Sec. IV-A3).
//!
//! One model is trained per dataset: batches of original windows are paired
//! with their anomaly-simulating augmentations, all active domains run
//! through their encoders plus the shared head inside a single autodiff
//! graph, and the blended loss (Eq. 7) is minimised with Adam. 10% of the
//! windows are held out as a validation split whose loss is tracked per
//! epoch.

use crate::config::TriadConfig;
use crate::encoder::{DomainEncoder, ProjectionHead};
use crate::features::FeatureExtractor;
use crate::loss::ContrastiveLoss;
use crate::Domain;
use neuro::graph::{Graph, Param};
use neuro::optim::Adam;
use neuro::Tensor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use tsops::window::{Segmenter, Windows};

/// The trained encoders + shared head.
pub struct Model {
    pub encoders: Vec<(Domain, DomainEncoder)>,
    pub head: ProjectionHead,
}

/// Build the untrained model skeleton for `cfg`, consuming weights from the
/// caller's RNG in the fixed construction order (encoders in `domains()`
/// order, then the head). `fit`, model loading, and the parallel runtime's
/// worker replicas all share this so structures always line up.
pub(crate) fn skeleton_with(rng: &mut StdRng, cfg: &TriadConfig) -> Model {
    let encoders: Vec<(Domain, DomainEncoder)> = cfg
        .domains()
        .iter()
        .map(|&d| {
            (
                d,
                DomainEncoder::new(rng, d.channels(), cfg.hidden, cfg.depth, cfg.kernel),
            )
        })
        .collect();
    let head = ProjectionHead::new(rng, cfg.hidden);
    Model { encoders, head }
}

/// [`skeleton_with`] seeded from `cfg.seed` — the exact skeleton `fit`
/// builds before training. Parameter values are placeholders the caller
/// overwrites (via [`Model::load_snapshot`] or deserialisation).
pub(crate) fn skeleton(cfg: &TriadConfig) -> Model {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    skeleton_with(&mut rng, cfg)
}

impl Model {
    pub fn params(&self) -> Vec<Param> {
        let mut p: Vec<Param> = self.encoders.iter().flat_map(|(_, e)| e.params()).collect();
        p.extend(self.head.params());
        p
    }

    /// Plain-tensor copies of every parameter value, in [`params`](Model::params)
    /// order. Unlike `Param` (an `Rc`), tensors cross thread boundaries, so
    /// this is how the parallel runtime ships weights to worker replicas.
    pub fn snapshot(&self) -> Vec<Tensor> {
        self.params().iter().map(|p| p.tensor()).collect()
    }

    /// Overwrite this model's parameter values from a [`snapshot`](Model::snapshot)
    /// (same count and shapes, `params()` order). Gradients are untouched.
    pub fn load_snapshot(&self, snap: &[Tensor]) {
        let params = self.params();
        assert_eq!(params.len(), snap.len(), "snapshot: parameter count");
        for (p, t) in params.iter().zip(snap) {
            assert_eq!(p.shape(), t.shape(), "snapshot: parameter shape");
            p.borrow_mut().value = t.clone();
        }
    }

    /// Embed a set of equal-length windows in one domain: returns the
    /// `[n, L]` embedding rows (unit-normalised).
    pub fn embed_windows(
        &self,
        fx: &FeatureExtractor,
        windows: &[&[f64]],
        domain: Domain,
    ) -> Vec<Vec<f32>> {
        let Some((_, enc)) = self.encoders.iter().find(|(d, _)| *d == domain) else {
            return Vec::new();
        };
        let mut out = Vec::with_capacity(windows.len());
        // Chunked so inference memory stays bounded on long test sets.
        for chunk in windows.chunks(16) {
            let batch = fx.batch_tensor(chunk, domain);
            let r = crate::encoder::embed(enc, &self.head, batch);
            for i in 0..chunk.len() {
                out.push(r.row(i).to_vec());
            }
        }
        out
    }

    /// [`embed_windows`](Model::embed_windows) distributed across the ambient
    /// worker pool: each worker rebuilds a structural replica from `cfg`
    /// (weights copied via [`snapshot`](Model::snapshot)) and embeds a
    /// contiguous span of windows. Every op in the embed path is
    /// batch-row independent, so the rows are bit-identical to the serial
    /// path at any thread count — batch boundaries don't matter.
    pub fn embed_windows_par(
        &self,
        cfg: &TriadConfig,
        fx: &FeatureExtractor,
        windows: &[&[f64]],
        domain: Domain,
    ) -> Vec<Vec<f32>> {
        let par = parallel::ambient().for_work(windows.len(), 4);
        if par.is_serial() || !self.encoders.iter().any(|(d, _)| *d == domain) {
            return self.embed_windows(fx, windows, domain);
        }
        let snap = self.snapshot();
        let spans = parallel::map_ranges(par, windows.len(), |range| {
            let replica = skeleton(cfg);
            replica.load_snapshot(&snap);
            replica.embed_windows(fx, &windows[range], domain)
        });
        spans.into_iter().flatten().collect()
    }
}

/// Per-epoch training diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    pub epoch_losses: Vec<f64>,
    pub val_losses: Vec<f64>,
    pub period: usize,
    pub window: usize,
    pub stride: usize,
    pub n_windows: usize,
}

/// Everything `fit` produces.
pub struct Trained {
    pub model: Model,
    pub extractor: FeatureExtractor,
    pub segmenter: Segmenter,
    pub report: TrainReport,
}

/// Train TriAD on an anomaly-free series.
///
/// Errors when the config is invalid, no period is detectable, or the series
/// is too short to produce at least one training batch.
pub fn fit(cfg: &TriadConfig, train: &[f64]) -> Result<Trained, String> {
    cfg.validate()?;
    // Scope the deterministic worker pool to this training run; everything
    // inside is thread-count invariant, so `cfg.threads` is purely a
    // performance knob.
    parallel::with_ambient(cfg.threads, || fit_inner(cfg, train))
}

fn fit_inner(cfg: &TriadConfig, train: &[f64]) -> Result<Trained, String> {
    let period = match cfg.period_override {
        Some(p) if p >= 2 => p,
        Some(p) => return Err(format!("period override {p} too small")),
        None => tsops::decompose::estimate_period(train, train.len() / 2)
            .ok_or("no detectable period in the training split")?,
    };

    let window = ((period as f64) * cfg.window_periods).ceil() as usize;
    let window = window.max(8);
    if train.len() < window * 2 {
        return Err(format!(
            "training split ({}) shorter than two windows ({window})",
            train.len()
        ));
    }
    let stride = ((window as f64 * cfg.stride_frac) as usize).max(1);
    let segmenter = Segmenter::new(window, stride);
    let windows: Windows = segmenter.segment(train.len());
    if windows.count() < 2 {
        return Err("fewer than two training windows".into());
    }

    let extractor = FeatureExtractor::fit(train, period);
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let domains = cfg.domains();
    let model = skeleton_with(&mut rng, cfg);

    let mut opt = Adam::new(model.params(), cfg.lr as f32);
    let loss_cfg = ContrastiveLoss {
        alpha: cfg.alpha,
        temperature: cfg.temperature,
        use_intra: cfg.use_intra,
        use_inter: cfg.use_inter && domains.len() > 1,
    };

    // Train/validation split over window indices.
    let mut idxs: Vec<usize> = (0..windows.count()).collect();
    idxs.shuffle(&mut rng);
    let n_val = ((idxs.len() as f64 * cfg.validation_frac) as usize)
        .min(idxs.len().saturating_sub(cfg.batch.min(idxs.len())));
    let (val_idx, train_idx) = idxs.split_at(n_val);
    let mut train_idx: Vec<usize> = train_idx.to_vec();
    let val_idx: Vec<usize> = val_idx.to_vec();

    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    let mut val_losses = Vec::with_capacity(cfg.epochs);

    for _epoch in 0..cfg.epochs {
        train_idx.shuffle(&mut rng);
        let mut epoch_loss = 0.0;
        let mut n_batches = 0usize;
        for chunk in train_idx.chunks(cfg.batch) {
            if chunk.len() < 2 {
                continue; // contrastive positives need ≥ 2 windows
            }
            let loss = if cfg.grad_shards > 1 {
                run_batch_sharded(
                    &model, &extractor, &loss_cfg, cfg, train, &windows, chunk, &mut rng,
                )
            } else {
                run_batch(
                    &model, &extractor, &loss_cfg, cfg, train, &windows, chunk, &mut rng, true,
                )
            };
            opt_step_guard(&mut opt);
            epoch_loss += loss;
            n_batches += 1;
        }
        if n_batches > 0 {
            epoch_losses.push(epoch_loss / n_batches as f64);
        } else {
            epoch_losses.push(f64::NAN);
        }

        // Validation loss (no gradient, no optimizer step).
        if val_idx.len() >= 2 {
            let vl = run_batch(
                &model, &extractor, &loss_cfg, cfg, train, &windows, &val_idx, &mut rng, false,
            );
            val_losses.push(vl);
        }
    }

    let report = TrainReport {
        epoch_losses,
        val_losses,
        period,
        window,
        stride,
        n_windows: windows.count(),
    };
    Ok(Trained {
        model,
        extractor,
        segmenter,
        report,
    })
}

/// One forward (and optionally backward+step) pass over a batch of window
/// indices; returns the loss value.
#[allow(clippy::too_many_arguments)]
fn run_batch(
    model: &Model,
    fx: &FeatureExtractor,
    loss_cfg: &ContrastiveLoss,
    cfg: &TriadConfig,
    series: &[f64],
    windows: &Windows,
    chunk: &[usize],
    rng: &mut StdRng,
    train_mode: bool,
) -> f64 {
    let originals: Vec<&[f64]> = chunk.iter().map(|&i| windows.slice(series, i)).collect();
    let augmented: Vec<Vec<f64>> = originals
        .iter()
        .map(|w| tsaug::augment_window(rng, w, &cfg.augment).0)
        .collect();
    let aug_refs: Vec<&[f64]> = augmented.iter().map(|v| v.as_slice()).collect();
    forward_backward(model, fx, loss_cfg, &originals, &aug_refs, train_mode)
}

/// Forward pass over one (originals, augmented) pairing; backward when
/// `train_mode` and the loss is finite. Returns the loss value.
fn forward_backward(
    model: &Model,
    fx: &FeatureExtractor,
    loss_cfg: &ContrastiveLoss,
    originals: &[&[f64]],
    aug_refs: &[&[f64]],
    train_mode: bool,
) -> f64 {
    let mut g = Graph::new();
    let mut rs = Vec::with_capacity(model.encoders.len());
    let mut ras = Vec::with_capacity(model.encoders.len());
    for (d, enc) in &model.encoders {
        let xo = g.input(fx.batch_tensor(originals, *d));
        let xa = g.input(fx.batch_tensor(aug_refs, *d));
        let ho = enc.forward(&mut g, xo);
        let ha = enc.forward(&mut g, xa);
        rs.push(model.head.forward(&mut g, ho));
        ras.push(model.head.forward(&mut g, ha));
    }
    let loss = loss_cfg.total(&mut g, &rs, &ras);
    let v = g.value(loss).item() as f64;
    if train_mode && v.is_finite() {
        g.backward(loss);
    }
    v
}

/// Data-parallel batch: split the window indices into `cfg.grad_shards`
/// fixed contiguous shards, run each shard's forward/backward on a worker
/// (against a structural replica of the model), then fold the shard
/// gradients into the live parameters *in shard order*.
///
/// Determinism contract: the shard structure and the fold order depend only
/// on the config — never on the worker count — and augmentations are drawn
/// serially up front, so the RNG stream and the accumulated gradients are
/// bit-identical at any thread count. (Sharding the contrastive loss does
/// change the objective relative to `grad_shards = 1`, which is why it is
/// an explicit config switch and not a transparent optimisation.)
#[allow(clippy::too_many_arguments)]
fn run_batch_sharded(
    model: &Model,
    fx: &FeatureExtractor,
    loss_cfg: &ContrastiveLoss,
    cfg: &TriadConfig,
    series: &[f64],
    windows: &Windows,
    chunk: &[usize],
    rng: &mut StdRng,
) -> f64 {
    // Augmentations are drawn serially, in batch order, before any worker
    // runs — the RNG stream never depends on thread interleaving.
    let originals: Vec<Vec<f64>> = chunk
        .iter()
        .map(|&i| windows.slice(series, i).to_vec())
        .collect();
    let augmented: Vec<Vec<f64>> = originals
        .iter()
        .map(|w| tsaug::augment_window(rng, w, &cfg.augment).0)
        .collect();

    // Every shard needs ≥ 2 windows for contrastive positives.
    let n_shards = cfg.grad_shards.min(chunk.len() / 2).max(1);
    let shards = parallel::split_ranges(chunk.len(), n_shards);
    let snap = model.snapshot();
    let par = parallel::ambient().for_work(n_shards, 1);
    let results = parallel::map_indexed(par, &shards, |_, range| {
        let replica = skeleton(cfg);
        replica.load_snapshot(&snap);
        let o: Vec<&[f64]> = originals[range.clone()]
            .iter()
            .map(|v| v.as_slice())
            .collect();
        let a: Vec<&[f64]> = augmented[range.clone()]
            .iter()
            .map(|v| v.as_slice())
            .collect();
        let loss = forward_backward(&replica, fx, loss_cfg, &o, &a, true);
        let grads: Vec<Tensor> = replica
            .params()
            .iter()
            .map(|p| p.value().grad.clone())
            .collect();
        (loss, grads)
    });

    let params = model.params();
    let mut weighted = 0.0f64;
    for ((loss, grads), range) in results.iter().zip(&shards) {
        for (p, g) in params.iter().zip(grads) {
            p.borrow_mut().grad.add_assign(g);
        }
        weighted += loss * range.len() as f64;
    }
    weighted / chunk.len() as f64
}

/// Step only when gradients are finite — a single degenerate batch must not
/// poison the whole per-dataset model.
fn opt_step_guard(opt: &mut Adam) {
    let finite = opt
        .params()
        .iter()
        .all(|p| p.value().grad.data().iter().all(|v| v.is_finite()));
    if finite {
        opt.step();
    } else {
        opt.zero_grad();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn periodic(n: usize, p: f64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                (2.0 * PI * i as f64 / p).sin()
                    + 0.3 * (4.0 * PI * i as f64 / p).sin()
                    + 0.02 * ((i * 2654435761_usize % 100) as f64 / 100.0 - 0.5)
            })
            .collect()
    }

    fn quick_cfg() -> TriadConfig {
        TriadConfig {
            epochs: 3,
            depth: 2,
            hidden: 8,
            batch: 4,
            ..Default::default()
        }
    }

    #[test]
    fn fit_trains_and_reports() {
        let train = periodic(800, 40.0);
        let t = fit(&quick_cfg(), &train).expect("fit");
        assert_eq!(t.report.period, 40);
        assert_eq!(t.report.window, 100);
        assert_eq!(t.report.stride, 25);
        assert_eq!(t.report.epoch_losses.len(), 3);
        assert!(t.report.epoch_losses.iter().all(|l| l.is_finite()));
        // Loss should not explode; usually it decreases.
        let first = t.report.epoch_losses[0];
        let last = *t.report.epoch_losses.last().unwrap();
        assert!(last <= first * 1.5, "loss exploded: {first} -> {last}");
    }

    #[test]
    fn fit_rejects_aperiodic_or_short_input() {
        let cfg = quick_cfg();
        assert!(fit(&cfg, &vec![0.0; 500]).is_err()); // constant
                                                      // Force window = 100 on a 60-sample series: too short for 2 windows.
        let mut short_cfg = cfg.clone();
        short_cfg.period_override = Some(40);
        assert!(fit(&short_cfg, &periodic(60, 40.0)).is_err());
    }

    #[test]
    fn period_override_is_honoured() {
        let train = periodic(600, 30.0);
        let mut cfg = quick_cfg();
        cfg.period_override = Some(20);
        let t = fit(&cfg, &train).unwrap();
        assert_eq!(t.report.period, 20);
        assert_eq!(t.report.window, 50);
        let mut cfg = quick_cfg();
        cfg.period_override = Some(1);
        assert!(fit(&cfg, &train).is_err());
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let train = periodic(700, 35.0);
        let a = fit(&quick_cfg(), &train).unwrap();
        let b = fit(&quick_cfg(), &train).unwrap();
        assert_eq!(a.report.epoch_losses, b.report.epoch_losses);
        let mut cfg = quick_cfg();
        cfg.seed = 1;
        let c = fit(&cfg, &train).unwrap();
        assert_ne!(a.report.epoch_losses, c.report.epoch_losses);
    }

    #[test]
    fn embeddings_have_window_length_and_unit_norm() {
        let train = periodic(800, 40.0);
        let t = fit(&quick_cfg(), &train).unwrap();
        let w = &train[0..t.report.window];
        let r = t.model.embed_windows(&t.extractor, &[w], Domain::Temporal);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].len(), t.report.window);
        let n: f32 = r[0].iter().map(|v| v * v).sum::<f32>().sqrt();
        assert!((n - 1.0).abs() < 1e-3);
    }

    #[test]
    fn ablated_domain_embeds_nothing() {
        let train = periodic(800, 40.0);
        let mut cfg = quick_cfg();
        cfg.use_residual = false;
        let t = fit(&cfg, &train).unwrap();
        let w = &train[0..t.report.window];
        assert!(t
            .model
            .embed_windows(&t.extractor, &[w], Domain::Residual)
            .is_empty());
        assert_eq!(t.model.encoders.len(), 2);
    }
}
