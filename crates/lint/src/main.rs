//! CLI for `triad-lint`.
//!
//! ```text
//! triad-lint [--root DIR] [--json | --sarif] [--deny] [--include-vendor]
//!            [--baseline FILE] [--write-baseline FILE]
//! triad-lint --fixture            # self-test on seeded-violation fixtures
//! triad-lint --list-rules         # print the rule catalog
//! ```
//!
//! Exit codes: 0 clean (or report-only), 1 diagnostics under `--deny` or a
//! failed fixture self-test, 2 usage/IO error.

use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: Option<PathBuf>,
    json: bool,
    sarif: bool,
    deny: bool,
    fixture: bool,
    include_vendor: bool,
    list_rules: bool,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        json: false,
        sarif: false,
        deny: false,
        fixture: false,
        include_vendor: false,
        list_rules: false,
        baseline: None,
        write_baseline: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => {
                let v = it.next().ok_or("--root requires a directory argument")?;
                args.root = Some(PathBuf::from(v));
            }
            "--baseline" => {
                let v = it.next().ok_or("--baseline requires a file argument")?;
                args.baseline = Some(PathBuf::from(v));
            }
            "--write-baseline" => {
                let v = it
                    .next()
                    .ok_or("--write-baseline requires a file argument")?;
                args.write_baseline = Some(PathBuf::from(v));
            }
            "--json" => args.json = true,
            "--sarif" => args.sarif = true,
            "--deny" => args.deny = true,
            "--fixture" => args.fixture = true,
            "--include-vendor" => args.include_vendor = true,
            "--list-rules" => args.list_rules = true,
            "--help" | "-h" => {
                println!(
                    "triad-lint: workspace static analysis for TriAD\n\n\
                     USAGE: triad-lint [--root DIR] [--json | --sarif] [--deny] [--include-vendor]\n\
                            \u{20}          [--baseline FILE] [--write-baseline FILE]\n\
                            triad-lint --fixture\n\
                            triad-lint --list-rules\n\n\
                     --root DIR             lint DIR instead of the workspace root\n\
                     --json                 machine-readable diagnostics on stdout\n\
                     --sarif                SARIF 2.1.0 on stdout\n\
                     --deny                 exit 1 if any diagnostic is emitted\n\
                     --baseline FILE        drop findings fingerprinted in FILE (CI gates on new ones)\n\
                     --write-baseline FILE  record current findings as the baseline and exit\n\
                     --fixture              run the seeded-violation self-test\n\
                     --include-vendor       also lint vendor/ (skipped by default)\n\
                     --list-rules           print the rule catalog and exit"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{}` (try --help)", other)),
        }
    }
    if args.json && args.sarif {
        return Err("--json and --sarif are mutually exclusive".to_string());
    }
    Ok(args)
}

/// Workspace root: `--root` wins; otherwise the current directory if it has
/// a `Cargo.toml` (that is where `cargo run` puts us), otherwise the
/// compile-time manifest's grandparent (running the binary directly).
fn resolve_root(args: &Args) -> PathBuf {
    if let Some(r) = &args.root {
        return r.clone();
    }
    let cwd = PathBuf::from(".");
    if cwd.join("Cargo.toml").exists() && cwd.join("crates").exists() {
        return cwd;
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(|p| p.to_path_buf())
        .unwrap_or(cwd)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("triad-lint: {}", e);
            return ExitCode::from(2);
        }
    };

    if args.list_rules {
        for (id, desc) in triad_lint::RULES {
            println!("{:<18} {}", id, desc);
        }
        return ExitCode::SUCCESS;
    }

    if args.fixture {
        let root = resolve_root(&args);
        let dir = args
            .root
            .clone()
            .unwrap_or_else(|| root.join("crates/lint/fixtures"));
        return match triad_lint::fixture_self_test(&dir) {
            Ok(outcome) => {
                print!("{}", outcome.report);
                if outcome.passed {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::from(1)
                }
            }
            Err(e) => {
                eprintln!("triad-lint: fixture self-test failed to run: {}", e);
                ExitCode::from(2)
            }
        };
    }

    let root = resolve_root(&args);
    let opts = triad_lint::Options {
        include_vendor: args.include_vendor,
    };
    let mut reports = match triad_lint::run(&root, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("triad-lint: failed to lint {}: {}", root.display(), e);
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &args.write_baseline {
        let text = triad_lint::baseline::render(&reports);
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("triad-lint: failed to write {}: {}", path.display(), e);
            return ExitCode::from(2);
        }
        let n: usize = reports.iter().map(|r| r.diagnostics.len()).sum();
        println!(
            "triad-lint: wrote baseline with {} finding{} to {}",
            n,
            if n == 1 { "" } else { "s" },
            path.display()
        );
        return ExitCode::SUCCESS;
    }

    if let Some(path) = &args.baseline {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("triad-lint: failed to read {}: {}", path.display(), e);
                return ExitCode::from(2);
            }
        };
        let set = match triad_lint::baseline::parse(&text) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("triad-lint: {}: {}", path.display(), e);
                return ExitCode::from(2);
            }
        };
        triad_lint::baseline::apply(&mut reports, &set);
    }

    let n: usize = reports.iter().map(|r| r.diagnostics.len()).sum();
    if args.json {
        print!("{}", triad_lint::engine::render_json(&reports));
    } else if args.sarif {
        print!("{}", triad_lint::sarif::render(&reports));
    } else {
        print!("{}", triad_lint::engine::render_human(&reports));
    }
    if args.deny && n > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
