//! Per-stream drift detection against the model's training residual stats.
//!
//! The online deviance of window `t` is `d_t = 1 − min(domain mean
//! similarity)` — exactly the signal `StreamEngine` thresholds for
//! hysteresis events. When the data regime a stream feeds drifts away from
//! what its model was fitted on, `d_t` rises *persistently*, not just in
//! the isolated spikes an anomaly produces. The classic detector for a
//! persistent mean shift is a one-sided CUSUM:
//!
//! ```text
//! g_t = max(0, g_{t−1} + (d_t − (μ + k·σ)))
//! ```
//!
//! where `μ, σ` are the mean/σ of the deviances the *training* series
//! itself scores under the model ([`DriftBaseline::from_model`]: replay
//! the training windows through a fresh `OnlineRanker` — the same stats
//! `detect` would compute over an anomaly-free regime, derived once per
//! model and cached). A single anomalous window bumps `g` once and decays;
//! a regime change pumps `g` every window until it crosses the threshold.
//!
//! Hysteresis mirrors the engine's event logic: drift *enters* when
//! `g ≥ threshold`, and *exits* only when `g` decays to `exit` — so a
//! stream hovering at the boundary does not emit an event per window. The
//! fold is O(1) per window, pure, and deterministic: two replicas fed the
//! same deviances agree on every signal regardless of thread count or
//! wall-clock timing.

use triad_core::FittedTriad;
use tsops::window::Segmenter;

/// Knobs for the drift test and the refit it triggers.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftPolicy {
    /// Master switch; `false` disables drift detection and refits.
    pub enabled: bool,
    /// `k` in the CUSUM slack `μ + k·σ`: how many training-σ above the
    /// training mean a deviance must be before it accumulates.
    pub slack_sigma: f64,
    /// Lower bound on the absolute slack above `μ`, for models whose
    /// training deviances are nearly constant (σ ≈ 0).
    pub slack_floor: f64,
    /// Accumulated excess deviance at which drift enters.
    pub threshold: f64,
    /// Statistic level at or below which an open drift episode exits.
    pub exit: f64,
    /// Windows to observe before drift may fire (warm-up: the first few
    /// windows score against very few peers and run hot).
    pub min_windows: u64,
    /// Completed windows between drift entry and the model swap: the refit
    /// runs in the background while the stream keeps scoring, and the swap
    /// lands at this deterministic window boundary.
    pub swap_horizon: u64,
    /// Most refits a single stream may trigger over its lifetime.
    pub max_refits: u64,
    /// Points from the stream tail a refit trains on (clamped to what the
    /// ring retains).
    pub refit_train_len: usize,
}

impl Default for DriftPolicy {
    fn default() -> Self {
        DriftPolicy {
            enabled: true,
            slack_sigma: 3.0,
            slack_floor: 0.05,
            threshold: 0.75,
            exit: 0.25,
            min_windows: 4,
            swap_horizon: 8,
            max_refits: 2,
            refit_train_len: 512,
        }
    }
}

/// Training-deviance statistics of a fitted model: what "normal" scores
/// look like for the regime the model was fitted on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftBaseline {
    /// Mean training deviance (first window excluded — it has no peers).
    pub mean: f64,
    /// Population σ of the training deviances.
    pub std: f64,
}

impl DriftBaseline {
    /// Replay the model's own training series through a fresh online
    /// ranker and fold the per-window deviances into mean/σ. One O(train)
    /// pass per model; the fleet manager caches the result alongside the
    /// model itself.
    pub fn from_model(fitted: &FittedTriad) -> DriftBaseline {
        let series = fitted.train_series();
        let seg = Segmenter::new(fitted.window_len(), fitted.segmenter().stride);
        let windows = seg.segment_clamped(series.len());
        let mut ranker = fitted.online_ranker();
        let mut n = 0u64;
        let mut sum = 0.0f64;
        let mut sumsq = 0.0f64;
        for i in 0..windows.count() {
            let means = fitted.push_window(&mut ranker, windows.slice(series, i));
            if i == 0 {
                continue; // no peers yet, deviance undefined
            }
            let min_mean = means.iter().map(|&(_, m)| m).fold(f64::INFINITY, f64::min);
            let d = 1.0 - min_mean;
            n += 1;
            sum += d;
            sumsq += d * d;
        }
        if n == 0 {
            return DriftBaseline {
                mean: 0.0,
                std: 0.0,
            };
        }
        let mean = sum / n as f64;
        let var = (sumsq / n as f64 - mean * mean).max(0.0);
        DriftBaseline {
            mean,
            std: var.sqrt(),
        }
    }
}

/// What one observed window did to the drift state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftSignal {
    /// Statistic below threshold (or hysteresis held); nothing changed.
    None,
    /// The statistic crossed the enter threshold: the stream's regime has
    /// departed from the model's training distribution.
    Entered,
    /// An open drift episode decayed below the exit level.
    Exited,
}

/// One stream's CUSUM drift state. Cheap (`Copy`-sized), deterministic,
/// and O(1) per observed window.
#[derive(Debug, Clone)]
pub struct DriftDetector {
    slack: f64,
    threshold: f64,
    exit: f64,
    min_windows: u64,
    g: f64,
    windows: u64,
    drifting: bool,
    episodes: u64,
}

impl DriftDetector {
    pub fn new(baseline: DriftBaseline, policy: &DriftPolicy) -> DriftDetector {
        DriftDetector {
            slack: baseline.mean + (policy.slack_sigma * baseline.std).max(policy.slack_floor),
            threshold: policy.threshold,
            exit: policy.exit,
            min_windows: policy.min_windows,
            g: 0.0,
            windows: 0,
            drifting: false,
            episodes: 0,
        }
    }

    /// Fold one scored window's deviance into the statistic.
    pub fn observe(&mut self, deviance: f64) -> DriftSignal {
        self.windows += 1;
        self.g = (self.g + (deviance - self.slack)).max(0.0);
        if !self.drifting {
            if self.windows >= self.min_windows && self.g >= self.threshold {
                self.drifting = true;
                self.episodes += 1;
                return DriftSignal::Entered;
            }
        } else if self.g <= self.exit {
            self.drifting = false;
            return DriftSignal::Exited;
        }
        DriftSignal::None
    }

    /// Whether a drift episode is currently open.
    pub fn drifting(&self) -> bool {
        self.drifting
    }

    /// Drift episodes entered so far.
    pub fn episodes(&self) -> u64 {
        self.episodes
    }

    /// Current value of the CUSUM statistic.
    pub fn statistic(&self) -> f64 {
        self.g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detector(mean: f64, std: f64) -> DriftDetector {
        DriftDetector::new(
            DriftBaseline { mean, std },
            &DriftPolicy {
                min_windows: 2,
                ..DriftPolicy::default()
            },
        )
    }

    #[test]
    fn stays_quiet_on_baseline_like_deviances() {
        let mut d = detector(0.1, 0.02);
        for _ in 0..200 {
            assert_eq!(d.observe(0.1), DriftSignal::None);
        }
        assert!(!d.drifting());
        assert_eq!(d.episodes(), 0);
    }

    #[test]
    fn single_spike_decays_without_drift() {
        let mut d = detector(0.1, 0.02);
        for _ in 0..10 {
            d.observe(0.1);
        }
        // One anomalous window: bumps the statistic below threshold…
        assert_eq!(d.observe(0.6), DriftSignal::None);
        // …and baseline windows decay it back to zero.
        for _ in 0..10 {
            assert_eq!(d.observe(0.1), DriftSignal::None);
        }
        assert_eq!(d.statistic(), 0.0);
    }

    #[test]
    fn sustained_shift_enters_once_then_exits_with_hysteresis() {
        let mut d = detector(0.1, 0.02);
        for _ in 0..5 {
            d.observe(0.1);
        }
        let mut entered = 0;
        for _ in 0..20 {
            match d.observe(0.5) {
                DriftSignal::Entered => entered += 1,
                DriftSignal::Exited => panic!("exit during sustained shift"),
                DriftSignal::None => {}
            }
        }
        assert_eq!(entered, 1, "hysteresis must not re-enter every window");
        assert!(d.drifting());
        let mut exited = 0;
        for _ in 0..200 {
            if d.observe(0.05) == DriftSignal::Exited {
                exited += 1;
            }
        }
        assert_eq!(exited, 1);
        assert!(!d.drifting());
        assert_eq!(d.episodes(), 1);
    }

    #[test]
    fn warmup_gate_defers_early_windows() {
        let mut d = DriftDetector::new(
            DriftBaseline {
                mean: 0.05,
                std: 0.0,
            },
            &DriftPolicy {
                min_windows: 5,
                threshold: 0.3,
                ..DriftPolicy::default()
            },
        );
        // Plenty of excess per window, but the warm-up gate holds until
        // window 5.
        let mut signals = Vec::new();
        for _ in 0..6 {
            signals.push(d.observe(0.9));
        }
        assert!(signals[..4].iter().all(|s| *s == DriftSignal::None));
        assert!(signals.contains(&DriftSignal::Entered));
    }
}
