//! Stream soak (bounded runtime, run by CI with `--ignored`): replay ucrgen
//! series through a live server at high rate across several streams, kill
//! the server after a mid-run checkpoint, restore into a fresh server over
//! the same directories, and require:
//!
//! * zero worker panics (every verb keeps answering, both servers shut down
//!   cleanly),
//! * zero checkpoint/CRC failures after the kill-and-restore,
//! * bit-identical restored stream state (poll snapshots match byte-for-byte),
//! * a final detection on close byte-equal to the offline `detect` over the
//!   same series.

use std::path::{Path, PathBuf};
use std::time::Duration;
use triad_core::{persist, TriAd, TriadConfig};
use triad_serve::{proto, Client, ServeConfig, Value};
use ucrgen::anomaly::AnomalyKind;
use ucrgen::archive::generate_dataset;

const CLIENT_TIMEOUT: Duration = Duration::from_secs(300);
const STREAMS: [&str; 3] = ["soak-a", "soak-b", "soak-c"];
const CHUNK: usize = 23; // deliberately off-stride

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("triad_stream_soak_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("mkdir");
    d
}

fn serve_cfg(models: &Path, ckpt: &Path) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".into(),
        models_dir: models.to_path_buf(),
        workers: 4,
        executors: 1,
        stream_shards: 2,
        // A shallow ingest queue so the high-rate replay actually exercises
        // backpressure; the pusher resends shed chunks.
        stream_queue: 8,
        stream_checkpoint_dir: Some(ckpt.to_path_buf()),
        ..Default::default()
    }
}

/// Push every chunk at full speed, resending whenever the shard queue sheds
/// it. Returns how many sends were shed at least once.
fn push_with_retry(ctl: &mut Client, stream: &str, points: &[f64]) -> u64 {
    let mut resent = 0u64;
    for chunk in points.chunks(CHUNK) {
        let mut tries = 0u32;
        loop {
            let resp = ctl.stream_push(stream, chunk).expect("stream.push");
            if resp.get("queued").and_then(Value::as_bool) == Some(true) {
                break;
            }
            resent += 1;
            tries += 1;
            assert!(tries < 10_000, "shard queue for {stream} stayed full");
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    resent
}

fn wait_for_seq(ctl: &mut Client, stream: &str, want: u64) -> Value {
    for _ in 0..6000 {
        let status = ctl.stream_poll(stream).expect("stream.poll");
        if status.get("seq").and_then(Value::as_u64) >= Some(want) {
            return status;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("stream {stream} never reached seq {want}");
}

/// Canonical render of a poll response: every status field, none of the
/// per-request envelope (id), so snapshots compare across connections and
/// server restarts.
fn canonical_status(resp: &Value) -> String {
    [
        "stream",
        "seq",
        "retained",
        "evicted",
        "windows_scored",
        "last_deviance",
        "anomalous",
        "events",
        "live",
        "rejected_nonfinite",
    ]
    .iter()
    .map(|k| format!("{k}={}", resp.get(k).cloned().unwrap_or(Value::Null)))
    .collect::<Vec<_>>()
    .join(";")
}

fn checkpoint_failures(ctl: &mut Client) -> u64 {
    let stats = ctl.stats().expect("stats");
    let shards = stats
        .get("streams")
        .and_then(|s| s.get("shards"))
        .and_then(Value::as_arr)
        .expect("streams.shards in stats");
    shards
        .iter()
        .map(|s| {
            s.get("checkpoint_failures")
                .and_then(Value::as_u64)
                .expect("checkpoint_failures counter")
        })
        .sum()
}

#[test]
#[ignore = "soak test: run explicitly (CI does) with --ignored"]
fn soak_replay_kill_restore_matches_offline() {
    let models = tmp_dir("models");
    let ckpts = tmp_dir("ckpts");

    // Ground truth: a quickly fitted model over an archive dataset, saved
    // where the server's model loader will find it.
    let ds = (0..120)
        .map(|id| generate_dataset(3, id))
        .find(|d| d.kind == AnomalyKind::LevelShift)
        .expect("level-shift dataset in archive");
    let fitted = TriAd::new(TriadConfig {
        epochs: 2,
        depth: 2,
        hidden: 8,
        batch: 4,
        merlin_step: 4,
        ..Default::default()
    })
    .fit(ds.train())
    .expect("fit");
    persist::save_file(&models.join("soak.triad"), &fitted).expect("save model");
    let test = ds.test().to_vec();
    let offline = fitted.detect(&test);
    let cut = test.len() / 2 + 3; // off-stride

    // --- server 1: open streams, replay the first half at high rate -------
    let handle = triad_serve::start(serve_cfg(&models, &ckpts)).expect("server 1");
    let addr = handle.addr().to_string();
    let mut ctl = Client::connect(&addr, CLIENT_TIMEOUT).expect("connect");
    let mut resent_total = 0u64;
    for name in STREAMS {
        ctl.stream_open(name, "soak").expect("stream.open");
        resent_total += push_with_retry(&mut ctl, name, &test[..cut]);
    }
    let mut snapshots = Vec::new();
    for name in STREAMS {
        wait_for_seq(&mut ctl, name, cut as u64);
    }
    // Checkpoint everything mid-run, then snapshot each stream's state.
    let written = ctl
        .stream_checkpoint(None)
        .expect("stream.checkpoint")
        .get("written")
        .and_then(Value::as_u64);
    assert_eq!(written, Some(STREAMS.len() as u64));
    for name in STREAMS {
        let status = ctl.stream_poll(name).expect("stream.poll");
        snapshots.push(canonical_status(&status));
    }
    assert_eq!(checkpoint_failures(&mut ctl), 0);
    // Kill the server (graceful: its manager checkpoints again on drop).
    ctl.shutdown().expect("shutdown");
    handle.wait();

    // --- server 2 over the same directories: restore, finish, close -------
    let handle = triad_serve::start(serve_cfg(&models, &ckpts)).expect("server 2");
    let addr = handle.addr().to_string();
    let mut ctl = Client::connect(&addr, CLIENT_TIMEOUT).expect("connect");
    let listed = ctl.stream_list().expect("stream.list");
    let names: Vec<&str> = listed
        .get("streams")
        .and_then(Value::as_arr)
        .expect("streams")
        .iter()
        .filter_map(Value::as_str)
        .collect();
    assert_eq!(names, STREAMS, "restored stream set differs");
    assert_eq!(checkpoint_failures(&mut ctl), 0, "restore hit CRC failures");

    for (name, before) in STREAMS.iter().zip(&snapshots) {
        let after = ctl.stream_poll(name).expect("poll restored");
        assert_eq!(
            &canonical_status(&after),
            before,
            "restored state of {name} is not bit-identical"
        );
    }

    // Finish the replay and close: the restart must be invisible in the
    // final detection, which must equal the offline result byte-for-byte.
    let expected_det: Vec<String> = STREAMS
        .iter()
        .map(|name| proto::detection_fields(name, &offline).to_string())
        .collect();
    for name in STREAMS {
        resent_total += push_with_retry(&mut ctl, name, &test[cut..]);
    }
    for (name, expected) in STREAMS.iter().zip(&expected_det) {
        wait_for_seq(&mut ctl, name, test.len() as u64);
        let report = ctl.stream_close(name).expect("stream.close");
        assert_eq!(
            report.get("finalize_error").cloned(),
            Some(Value::Null),
            "finalize failed for {name}"
        );
        let got = report
            .get("detection")
            .expect("detection in close response")
            .to_string();
        assert_eq!(&got, expected, "{name}: online detection != offline");
    }

    // No samples lost end to end: everything shed by backpressure was
    // resent, nothing was rejected, no worker died.
    let stats = ctl.stats().expect("stats");
    let shards = stats
        .get("streams")
        .and_then(|s| s.get("shards"))
        .and_then(Value::as_arr)
        .expect("shards");
    let nonfinite: u64 = shards
        .iter()
        .map(|s| s.get("dropped_nonfinite").and_then(Value::as_u64).unwrap())
        .sum();
    assert_eq!(nonfinite, 0);
    eprintln!(
        "soak: {} streams x {} points, {} chunk resends under backpressure",
        STREAMS.len(),
        test.len(),
        resent_total
    );
    ctl.shutdown().expect("shutdown 2");
    handle.wait();
    let _ = std::fs::remove_dir_all(&models);
    let _ = std::fs::remove_dir_all(&ckpts);
}
