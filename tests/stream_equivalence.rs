//! Online/offline equivalence of the streaming layer on archive data.
//!
//! For every anomaly kind in the synthetic UCR archive: replaying the test
//! split point-by-point through a [`StreamEngine`] and finalizing must
//! reproduce the offline `detect` **bit-exactly** — including when the
//! engine is killed mid-series, checkpointed, and restored from bytes at a
//! deliberately off-stride cut.

mod common;

use common::{dataset_of, quick_cfg, KINDS};
use triad_core::{TriAd, TriadDetection};
use triad_stream::{checkpoint, StreamConfig, StreamEngine};
use ucrgen::anomaly::AnomalyKind;

fn replay(engine: &mut StreamEngine, fitted: &triad_core::FittedTriad, points: &[f64]) {
    for &x in points {
        engine.push(fitted, x).expect("push");
    }
}

fn assert_same(kind: AnomalyKind, what: &str, got: &TriadDetection, want: &TriadDetection) {
    assert_eq!(got, want, "{kind:?}: {what} diverges from offline detect");
}

#[test]
fn streamed_detection_equals_offline_on_every_smoke_dataset() {
    for (i, kind) in KINDS.into_iter().enumerate() {
        let ds = dataset_of(kind);
        let fitted = TriAd::new(quick_cfg(i as u64))
            .fit(ds.train())
            .expect("fit");
        let test = ds.test();
        let offline = fitted.detect(test);

        // Straight replay: one point at a time, then finalize.
        let mut live = StreamEngine::new(&fitted, StreamConfig::default());
        replay(&mut live, &fitted, test);
        let streamed = live.finalize(&fitted).expect("finalize");
        assert_same(kind, "straight replay", &streamed, &offline);

        // Kill-and-restore: feed to an off-stride cut, checkpoint to bytes,
        // drop the engine, resume from the checkpoint, feed the rest. The
        // restart must be invisible in the final detection AND in the
        // running event set.
        let cut = test.len() / 2 + 1;
        let mut first = StreamEngine::new(&fitted, StreamConfig::default());
        replay(&mut first, &fitted, &test[..cut]);
        let mut bytes = Vec::new();
        checkpoint::save(&mut bytes, "eq", "m", &first).expect("save");
        drop(first);

        let mut resumed = checkpoint::load(&bytes[..])
            .expect("load")
            .into_engine(&fitted)
            .expect("into_engine");
        replay(&mut resumed, &fitted, &test[cut..]);
        assert_eq!(
            resumed.status(),
            live.status(),
            "{kind:?}: resumed status (events, live view) diverges"
        );
        let resumed_det = resumed.finalize(&fitted).expect("finalize");
        assert_same(kind, "kill-and-restore replay", &resumed_det, &offline);
    }
}
