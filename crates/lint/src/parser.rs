//! A lightweight recursive-descent parser over the token stream.
//!
//! The syntax-aware rules need *structure* — which tokens live inside which
//! delimiter group, where a closure body ends, what the matching `)` of a
//! call is — but not a full Rust grammar. This module builds a **delimiter
//! tree**: every token becomes a leaf, and balanced `()` / `[]` / `{}`
//! pairs become groups whose children are the tokens (and nested groups)
//! between them. The tree is *total* and *faithful*:
//!
//! * any input parses (stray closers become leaves, unterminated groups run
//!   to EOF with `close: None`);
//! * an in-order traversal visits every token index exactly once, in order
//!   — so reassembling the spans reproduces the file byte-for-byte (pinned
//!   by a proptest and by a round-trip test over every workspace source
//!   file in `tests/parser_roundtrip.rs`).
//!
//! On top of the tree, [`Tree::matching_close`] / [`Tree::matching_open`]
//! answer bracket-matching queries over *significant-token* indices, which
//! is how the determinism rules walk method-call chains and closure bodies
//! without re-counting depth by hand.

use crate::tokenizer::{Tok, TokKind};

/// The three bracket kinds that form groups. Angle brackets are *not*
/// delimiters (they cannot be balanced without type context) and stay
/// leaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delim {
    Paren,
    Bracket,
    Brace,
}

impl Delim {
    fn of_open(b: u8) -> Option<Delim> {
        match b {
            b'(' => Some(Delim::Paren),
            b'[' => Some(Delim::Bracket),
            b'{' => Some(Delim::Brace),
            _ => None,
        }
    }

    fn of_close(b: u8) -> Option<Delim> {
        match b {
            b')' => Some(Delim::Paren),
            b']' => Some(Delim::Bracket),
            b'}' => Some(Delim::Brace),
            _ => None,
        }
    }
}

/// One node of the delimiter tree. Leaves index into the token vector.
#[derive(Debug, Clone)]
pub enum Node {
    /// A single non-delimiter token (or a stray closer with no opener).
    Leaf(usize),
    /// A balanced (or EOF-truncated) delimiter group.
    Group(Group),
}

/// A delimiter group: `open` and `close` are token indices of the
/// brackets themselves; `children` hold everything in between.
#[derive(Debug, Clone)]
pub struct Group {
    pub delim: Delim,
    pub open: usize,
    /// `None` when the group is unterminated (runs to EOF).
    pub close: Option<usize>,
    pub children: Vec<Node>,
}

/// The parsed file: a forest of top-level nodes plus bracket-match tables.
#[derive(Debug, Clone)]
pub struct Tree {
    pub top: Vec<Node>,
    /// token index of an opener → token index of its matching closer.
    open_to_close: Vec<(usize, usize)>,
    /// token index of a closer → token index of its matching opener.
    close_to_open: Vec<(usize, usize)>,
}

impl Tree {
    /// The matching closer's token index for the opener at token index
    /// `open` (`None` for unterminated groups or non-openers).
    pub fn matching_close(&self, open: usize) -> Option<usize> {
        self.open_to_close
            .binary_search_by_key(&open, |&(o, _)| o)
            .ok()
            .map(|i| self.open_to_close[i].1)
    }

    /// The matching opener's token index for the closer at token index
    /// `close` (`None` for stray closers or non-closers).
    pub fn matching_open(&self, close: usize) -> Option<usize> {
        self.close_to_open
            .binary_search_by_key(&close, |&(c, _)| c)
            .ok()
            .map(|i| self.close_to_open[i].1)
    }

    /// In-order token indices — the round-trip witness.
    pub fn token_order(&self) -> Vec<usize> {
        let mut out = Vec::new();
        fn walk(nodes: &[Node], out: &mut Vec<usize>) {
            for n in nodes {
                match n {
                    Node::Leaf(i) => out.push(*i),
                    Node::Group(g) => {
                        out.push(g.open);
                        walk(&g.children, out);
                        if let Some(c) = g.close {
                            out.push(c);
                        }
                    }
                }
            }
        }
        walk(&self.top, &mut out);
        out
    }
}

/// One open frame during parsing.
struct Frame {
    delim: Delim,
    open: usize,
    children: Vec<Node>,
}

/// Parse the token stream into a delimiter tree. Total: never fails, and
/// every token index appears exactly once in the result.
pub fn parse(tokens: &[Tok], src: &[u8]) -> Tree {
    let mut stack: Vec<Frame> = Vec::new();
    let mut top: Vec<Node> = Vec::new();
    let mut open_to_close: Vec<(usize, usize)> = Vec::new();

    fn push_node(stack: &mut [Frame], top: &mut Vec<Node>, node: Node) {
        match stack.last_mut() {
            Some(f) => f.children.push(node),
            None => top.push(node),
        }
    }

    for (i, t) in tokens.iter().enumerate() {
        if t.kind == TokKind::Punct && t.end == t.start + 1 {
            let b = src[t.start];
            if let Some(d) = Delim::of_open(b) {
                stack.push(Frame {
                    delim: d,
                    open: i,
                    children: Vec::new(),
                });
                continue;
            }
            if let Some(d) = Delim::of_close(b) {
                if let Some(pos) = stack.iter().rposition(|f| f.delim == d) {
                    // Close any inner frames the closer skips over (their
                    // opener never got a match) …
                    while stack.len() > pos + 1 {
                        if let Some(f) = stack.pop() {
                            let node = Node::Group(Group {
                                delim: f.delim,
                                open: f.open,
                                close: None,
                                children: f.children,
                            });
                            push_node(&mut stack, &mut top, node);
                        }
                    }
                    // … then close the matching frame with this token.
                    if let Some(f) = stack.pop() {
                        open_to_close.push((f.open, i));
                        let node = Node::Group(Group {
                            delim: f.delim,
                            open: f.open,
                            close: Some(i),
                            children: f.children,
                        });
                        push_node(&mut stack, &mut top, node);
                    }
                    continue;
                }
                // Stray closer with no opener anywhere: keep it as a leaf.
            }
        }
        push_node(&mut stack, &mut top, Node::Leaf(i));
    }

    // Unterminated groups run to EOF.
    while let Some(f) = stack.pop() {
        let node = Node::Group(Group {
            delim: f.delim,
            open: f.open,
            close: None,
            children: f.children,
        });
        push_node(&mut stack, &mut top, node);
    }

    open_to_close.sort_unstable();
    let mut close_to_open: Vec<(usize, usize)> =
        open_to_close.iter().map(|&(o, c)| (c, o)).collect();
    close_to_open.sort_unstable();
    Tree {
        top,
        open_to_close,
        close_to_open,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::tokenize;

    fn tree_of(src: &str) -> (Vec<Tok>, Tree) {
        let toks = tokenize(src.as_bytes());
        let tree = parse(&toks, src.as_bytes());
        (toks, tree)
    }

    fn assert_round_trip(src: &[u8]) {
        let toks = tokenize(src);
        let tree = parse(&toks, src);
        let order = tree.token_order();
        assert_eq!(order.len(), toks.len(), "token count preserved");
        for (expect, got) in order.iter().enumerate() {
            assert_eq!(*got, expect, "tokens emitted in order");
        }
        let mut rebuilt = Vec::new();
        for i in order {
            rebuilt.extend_from_slice(toks[i].bytes(src));
        }
        assert_eq!(rebuilt, src, "byte-exact reassembly");
    }

    #[test]
    fn nesting_and_matching() {
        let src = "fn f(a: u32) { g(a, [1, 2]); }";
        let (toks, tree) = tree_of(src);
        // Find the token index of the outer `{`.
        let brace = toks
            .iter()
            .position(|t| t.bytes(src.as_bytes()) == b"{")
            .expect("has a brace");
        let close = tree.matching_close(brace).expect("brace is matched");
        assert_eq!(toks[close].bytes(src.as_bytes()), b"}");
        assert_eq!(tree.matching_open(close), Some(brace));
    }

    #[test]
    fn stray_closer_is_a_leaf() {
        assert_round_trip(b"a ) b");
        let (_, tree) = tree_of("a ) b");
        assert!(tree.top.iter().all(|n| matches!(n, Node::Leaf(_))));
    }

    #[test]
    fn unterminated_group_runs_to_eof() {
        assert_round_trip(b"f(a, b");
        let (_, tree) = tree_of("f(a, b");
        let group = tree.top.iter().find_map(|n| match n {
            Node::Group(g) => Some(g),
            Node::Leaf(_) => None,
        });
        assert!(group.is_some_and(|g| g.close.is_none()));
    }

    #[test]
    fn mismatched_closer_closes_inner_frames() {
        // `{ ( }` — the `}` matches the `{`, the `(` is unterminated.
        assert_round_trip(b"{ ( }");
        let (toks, tree) = tree_of("{ ( }");
        let brace = toks
            .iter()
            .position(|t| t.bytes(b"{ ( }") == b"{")
            .expect("brace");
        assert!(tree.matching_close(brace).is_some());
    }

    #[test]
    fn round_trips_on_this_file() {
        assert_round_trip(include_bytes!("parser.rs"));
    }

    #[test]
    fn brackets_inside_strings_do_not_open_groups() {
        let src = r#"let s = "( not a group ["; f(x);"#;
        assert_round_trip(src.as_bytes());
        let (toks, tree) = tree_of(src);
        // The only group is `f(x)`'s parens.
        let opens: Vec<usize> = toks
            .iter()
            .enumerate()
            .filter(|(i, t)| t.kind == TokKind::Punct && tree.matching_close(*i).is_some())
            .map(|(i, _)| i)
            .collect();
        assert_eq!(opens.len(), 1, "{opens:?}");
    }
}
