//! Generation-numbered checkpoint storage for evicted stream engines.
//!
//! Each eviction (or sweep) of stream `s` writes generation `g` as
//! `s.g<8-digit>.ckpt` in the store directory, via a `.tmp` file renamed
//! into place so a crash mid-write never clobbers the previous good
//! generation. The payload (a TRIADS1 engine checkpoint, itself CRC'd) is
//! wrapped in a second framing layer with its own magic, length field, and
//! whole-file CRC-32 trailer:
//!
//! ```text
//! magic   b"TRIADF1\n"
//! u64     generation
//! u64     payload length (bounded)
//! bytes   payload (TRIADS1 checkpoint)
//! u32     CRC-32 (IEEE) of every preceding byte, little-endian
//! ```
//!
//! [`CheckpointStore::latest`] walks a stream's generations newest-first
//! and returns the first one that passes the magic/length/CRC gauntlet —
//! a torn or truncated newest file silently falls back to the previous
//! intact generation (stale-generation recovery). Superseded generations
//! are deleted by [`compact`](CheckpointStore::compact) after a successful
//! write; `.tmp` orphans from crashed writers are collected on open.

use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use triad_core::persist::{read_exact_ctx, CrcReader, CrcWriter};

const MAGIC: &[u8; 8] = b"TRIADF1\n";

/// Largest accepted wrapped payload (a TRIADS1 checkpoint; 1 GiB is far
/// beyond any engine this crate budgets for).
const MAX_PAYLOAD: u64 = 1 << 30;

/// Directory-backed, generation-numbered checkpoint store. See the module
/// docs for the file format and recovery rules.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
}

fn file_name(stream: &str, generation: u64) -> String {
    format!("{stream}.g{generation:08}.ckpt")
}

/// Parse `"<stream>.g<digits>.ckpt"` back into `(stream, generation)`.
/// Returns `None` for anything else (including `.tmp` orphans).
fn parse_name(name: &str) -> Option<(&str, u64)> {
    let rest = name.strip_suffix(".ckpt")?;
    let (stem, gen_seg) = rest.rsplit_once('.')?;
    let digits = gen_seg.strip_prefix('g')?;
    if digits.len() < 8 || digits.len() > 20 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    Some((stem, digits.parse().ok()?))
}

impl CheckpointStore {
    /// Open (creating if needed) a store rooted at `dir` and collect any
    /// `.tmp` orphans a crashed writer left behind.
    pub fn open(dir: &Path) -> Result<CheckpointStore, String> {
        std::fs::create_dir_all(dir).map_err(|e| format!("checkpoint store {dir:?}: {e}"))?;
        let store = CheckpointStore {
            dir: dir.to_path_buf(),
        };
        store.gc_orphans();
        Ok(store)
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_of(&self, stream: &str, generation: u64) -> PathBuf {
        self.dir.join(file_name(stream, generation))
    }

    /// Remove `.tmp` files from writers that died mid-checkpoint. Returns
    /// how many were collected.
    pub fn gc_orphans(&self) -> usize {
        let mut removed = 0;
        for entry in self.entries() {
            if entry.extension().and_then(|e| e.to_str()) == Some("tmp")
                && std::fs::remove_file(&entry).is_ok()
            {
                removed += 1;
            }
        }
        removed
    }

    /// Sorted directory listing (sorted so every walk is deterministic
    /// regardless of filesystem enumeration order).
    fn entries(&self) -> Vec<PathBuf> {
        let mut out = Vec::new();
        if let Ok(dir) = std::fs::read_dir(&self.dir) {
            for entry in dir.flatten() {
                out.push(entry.path());
            }
        }
        out.sort();
        out
    }

    /// Write one generation atomically (tmp + rename). An existing file for
    /// the same generation is replaced.
    pub fn put(&self, stream: &str, generation: u64, payload: &[u8]) -> Result<(), String> {
        if payload.len() as u64 > MAX_PAYLOAD {
            return Err(format!(
                "checkpoint payload for {stream:?} is {} bytes, over the {MAX_PAYLOAD} cap",
                payload.len()
            ));
        }
        let path = self.path_of(stream, generation);
        let tmp = path.with_extension("ckpt.tmp");
        let write = || -> std::io::Result<()> {
            let f = std::fs::File::create(&tmp)?;
            let mut w = CrcWriter::new(std::io::BufWriter::new(f));
            w.write_all(MAGIC)?;
            w.write_all(&generation.to_le_bytes())?;
            w.write_all(&(payload.len() as u64).to_le_bytes())?;
            w.write_all(payload)?;
            w.finish()?;
            std::fs::rename(&tmp, &path)
        };
        write().map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            format!("checkpoint write {path:?}: {e}")
        })
    }

    /// Read and verify one specific generation file.
    fn read_generation(&self, stream: &str, generation: u64) -> Result<Vec<u8>, String> {
        let path = self.path_of(stream, generation);
        let f = std::fs::File::open(&path).map_err(|e| format!("open {path:?}: {e}"))?;
        let mut r = CrcReader::new(std::io::BufReader::new(f));
        let mut magic = [0u8; 8];
        read_exact_ctx(&mut r, &mut magic, "store magic").map_err(|e| e.to_string())?;
        if &magic != MAGIC {
            return Err(format!("{path:?}: bad magic"));
        }
        let mut b = [0u8; 8];
        read_exact_ctx(&mut r, &mut b, "store generation").map_err(|e| e.to_string())?;
        let stored_gen = u64::from_le_bytes(b);
        if stored_gen != generation {
            return Err(format!(
                "{path:?}: generation field {stored_gen} disagrees with file name {generation}"
            ));
        }
        read_exact_ctx(&mut r, &mut b, "store payload length").map_err(|e| e.to_string())?;
        let len = u64::from_le_bytes(b);
        if len > MAX_PAYLOAD {
            return Err(format!("{path:?}: implausible payload length {len}"));
        }
        let mut payload = vec![0u8; len as usize];
        r.read_exact(&mut payload)
            .map_err(|e| format!("{path:?}: truncated payload: {e}"))?;
        r.verify_trailer().map_err(|e| format!("{path:?}: {e}"))?;
        Ok(payload)
    }

    /// Every on-disk generation of `stream`, ascending.
    pub fn generations(&self, stream: &str) -> Vec<u64> {
        let mut gens = Vec::new();
        for path in self.entries() {
            if let Some(name) = path.file_name().and_then(|n| n.to_str()) {
                if let Some((s, g)) = parse_name(name) {
                    if s == stream {
                        gens.push(g);
                    }
                }
            }
        }
        gens.sort_unstable();
        gens
    }

    /// The newest *intact* generation of `stream` and its payload, or
    /// `None` when no generation survives validation. Torn or corrupt files
    /// are skipped (newest-first), which is the crash-recovery path: a
    /// write that died after `rename` of a damaged tmp can never mask the
    /// previous good generation.
    pub fn latest(&self, stream: &str) -> Option<(u64, Vec<u8>)> {
        let mut gens = self.generations(stream);
        gens.reverse();
        for g in gens {
            if let Ok(payload) = self.read_generation(stream, g) {
                return Some((g, payload));
            }
        }
        None
    }

    /// Delete every generation of `stream` older than `keep`. Returns how
    /// many files were removed.
    pub fn compact(&self, stream: &str, keep: u64) -> usize {
        let mut removed = 0;
        for g in self.generations(stream) {
            if g < keep && std::fs::remove_file(self.path_of(stream, g)).is_ok() {
                removed += 1;
            }
        }
        removed
    }

    /// Delete every generation of `stream` (stream closed). Returns how
    /// many files were removed.
    pub fn remove_stream(&self, stream: &str) -> usize {
        let mut removed = 0;
        for g in self.generations(stream) {
            if std::fs::remove_file(self.path_of(stream, g)).is_ok() {
                removed += 1;
            }
        }
        removed
    }

    /// `(stream, latest generation)` for every stream with at least one
    /// generation on disk, sorted by stream name.
    pub fn list(&self) -> Vec<(String, u64)> {
        let mut latest: Vec<(String, u64)> = Vec::new();
        for path in self.entries() {
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            let Some((s, g)) = parse_name(name) else {
                continue;
            };
            match latest.iter_mut().find(|(seen, _)| seen == s) {
                Some((_, best)) => *best = (*best).max(g),
                None => latest.push((s.to_string(), g)),
            }
        }
        latest.sort();
        latest
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> CheckpointStore {
        let dir =
            std::env::temp_dir().join(format!("triad_fleet_store_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        CheckpointStore::open(&dir).expect("open store")
    }

    #[test]
    fn put_latest_round_trip_and_generation_ordering() {
        let store = temp_store("roundtrip");
        store.put("alpha", 1, b"one").expect("put g1");
        store.put("alpha", 2, b"two").expect("put g2");
        store.put("beta.01", 7, b"seven").expect("put beta");

        assert_eq!(store.generations("alpha"), vec![1, 2]);
        let (g, payload) = store.latest("alpha").expect("latest");
        assert_eq!((g, payload.as_slice()), (2, b"two".as_slice()));
        let (g, payload) = store.latest("beta.01").expect("latest dotted");
        assert_eq!((g, payload.as_slice()), (7, b"seven".as_slice()));
        assert_eq!(
            store.list(),
            vec![("alpha".to_string(), 2), ("beta.01".to_string(), 7)]
        );
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn compact_removes_only_superseded_generations() {
        let store = temp_store("compact");
        for g in 1..=4 {
            store.put("s", g, &[g as u8]).expect("put");
        }
        assert_eq!(store.compact("s", 4), 3);
        assert_eq!(store.generations("s"), vec![4]);
        assert_eq!(store.latest("s").map(|(g, _)| g), Some(4));
        assert_eq!(store.remove_stream("s"), 1);
        assert_eq!(store.latest("s"), None);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn torn_newest_generation_falls_back_to_previous_intact_one() {
        let store = temp_store("torn");
        store.put("s", 1, b"good generation one").expect("put g1");
        store.put("s", 2, b"good generation two").expect("put g2");

        // Tear generation 2: truncate it mid-payload.
        let path = store.dir().join(file_name("s", 2));
        let bytes = std::fs::read(&path).expect("read");
        std::fs::write(&path, &bytes[..bytes.len() - 7]).expect("truncate");

        let (g, payload) = store.latest("s").expect("fallback");
        assert_eq!(
            (g, payload.as_slice()),
            (1, b"good generation one".as_slice())
        );

        // A corrupted (bit-flipped) newest generation is also skipped.
        let mut flipped = std::fs::read(store.dir().join(file_name("s", 1))).expect("read g1");
        store.put("s", 3, b"good generation three").expect("put g3");
        let p3 = store.dir().join(file_name("s", 3));
        let len = flipped.len();
        flipped[len / 2] ^= 0x40;
        std::fs::write(&p3, &flipped).expect("overwrite g3 with corrupt bytes");
        assert_eq!(store.latest("s").map(|(g, _)| g), Some(1));
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn orphan_tmp_files_are_collected_on_open() {
        let store = temp_store("orphans");
        std::fs::write(store.dir().join("s.g00000001.ckpt.tmp"), b"torn writer")
            .expect("write orphan");
        let reopened = CheckpointStore::open(store.dir()).expect("reopen");
        assert_eq!(reopened.list(), Vec::new());
        assert!(!store.dir().join("s.g00000001.ckpt.tmp").exists());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn foreign_files_are_ignored() {
        let store = temp_store("foreign");
        std::fs::write(store.dir().join("README.txt"), b"not a checkpoint").expect("write");
        std::fs::write(store.dir().join("s.ckpt"), b"no generation segment").expect("write");
        assert_eq!(store.list(), Vec::new());
        assert_eq!(store.latest("s"), None);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;
        use std::sync::atomic::{AtomicUsize, Ordering};

        /// Per-case directory counter: proptest reuses one process, so the
        /// pid alone would alias cases.
        static CASE: AtomicUsize = AtomicUsize::new(0);

        fn case_store(tag: &str) -> CheckpointStore {
            let dir = std::env::temp_dir().join(format!(
                "triad_fleet_prop_{tag}_{}_{}",
                std::process::id(),
                CASE.fetch_add(1, Ordering::SeqCst)
            ));
            let _ = std::fs::remove_dir_all(&dir);
            CheckpointStore::open(&dir).expect("open store")
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(12))]

            // Any ascending set of generations round-trips byte-exactly:
            // `latest` returns the highest generation's payload, and
            // compacting to it removes exactly the superseded files
            // without touching the survivor.
            #[test]
            fn generation_round_trip(
                deltas in prop::collection::vec(1u64..10_000, 1..6),
                payloads in prop::collection::vec(
                    prop::collection::vec(0u8..=255, 0..256), 6..7),
            ) {
                let store = case_store("rt");
                // Strictly ascending generations from positive deltas.
                let gens: Vec<u64> = deltas
                    .iter()
                    .scan(0u64, |acc, d| {
                        *acc += d;
                        Some(*acc)
                    })
                    .collect();
                for (g, p) in gens.iter().zip(&payloads) {
                    store.put("s", *g, p).expect("put");
                }
                prop_assert_eq!(store.generations("s"), gens.clone());
                let top = *gens.last().expect("nonempty");
                let want = payloads[gens.len() - 1].clone();
                let (g, payload) = store.latest("s").expect("latest");
                prop_assert_eq!((g, payload), (top, want.clone()));
                prop_assert_eq!(store.list(), vec![("s".to_string(), top)]);

                prop_assert_eq!(store.compact("s", top), gens.len() - 1);
                prop_assert_eq!(store.generations("s"), vec![top]);
                let (g, payload) = store.latest("s").expect("latest after compact");
                prop_assert_eq!((g, payload), (top, want));
                let _ = std::fs::remove_dir_all(store.dir());
            }

            // Whatever happens to the newest generation file — truncated at
            // any point, any byte corrupted, or replaced with garbage — the
            // store falls back to the previous intact generation.
            #[test]
            fn damaged_newest_generation_recovers_previous_intact_one(
                good in prop::collection::vec(0u8..=255, 1..200),
                newest in prop::collection::vec(0u8..=255, 1..200),
                corruption in 0usize..3,
                pos_frac in 0.0f64..1.0,
            ) {
                let store = case_store("torn");
                store.put("s", 3, &good).expect("put g3");
                store.put("s", 4, &newest).expect("put g4");

                let path = store.dir().join(file_name("s", 4));
                let bytes = std::fs::read(&path).expect("read g4");
                match corruption {
                    0 => {
                        // Torn write: any strict prefix of the file.
                        let cut = ((bytes.len() - 1) as f64 * pos_frac) as usize;
                        std::fs::write(&path, &bytes[..cut]).expect("truncate");
                    }
                    1 => {
                        // Single corrupted byte anywhere: magic, generation,
                        // length, payload, or the CRC trailer itself.
                        let mut b = bytes;
                        let idx = ((b.len() - 1) as f64 * pos_frac) as usize;
                        b[idx] ^= 0x10;
                        std::fs::write(&path, &b).expect("flip");
                    }
                    _ => {
                        std::fs::write(&path, b"not a checkpoint at all").expect("garbage");
                    }
                }

                let (g, payload) = store.latest("s").expect("fallback generation");
                prop_assert_eq!((g, payload), (3, good));
                let _ = std::fs::remove_dir_all(store.dir());
            }
        }
    }
}
