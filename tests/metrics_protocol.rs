//! Integration test of the Sec. II-B claim chain: on explicit-anomaly
//! (KPI/SWaT-like) data, point adjustment inflates scores so much that a
//! random detector looks strong, while PA%K deflates it — and the one-liner
//! threshold really does solve those datasets.

use baselines::random::RandomDetector;
use baselines::Detector;
use ucrgen::oneliner::{kpi_like, oneliner_predict, swat_like};

#[test]
fn pa_inflates_random_scores_on_swat_like_data() {
    let d = swat_like(5, 2000, 4000, 4);
    let labels = d.test_labels();
    let scores = RandomDetector::new(1).score(d.train(), d.test());
    // Random flags ~half the points at the median threshold.
    let thr = evalkit::threshold::quantile(&scores, 0.5);
    let pred = evalkit::threshold::apply(&scores, thr);

    let pw = evalkit::pointwise::prf(&pred, &labels);
    let pa = evalkit::pa::prf_pa(&pred, &labels);
    let pak = evalkit::pak::pak_auc(&pred, &labels);

    // The Table II shape: PA rockets above PW; PA%K sits between.
    assert!(pa.f1 > pw.f1 + 0.1, "PA {:.3} vs PW {:.3}", pa.f1, pw.f1);
    assert!(pak.f1_auc <= pa.f1 && pak.f1_auc >= pw.f1 - 1e-9);
    // Long dense events make even the random detector look decent under PA.
    assert!(pa.f1 > 0.5, "PA F1 {:.3}", pa.f1);
}

#[test]
fn oneliner_solves_kpi_like_but_not_archive_data() {
    let kpi = kpi_like(6, 2000, 4000, 8);
    let pred = oneliner_predict(&kpi, 4.0);
    let pa = evalkit::pa::prf_pa(&pred, &kpi.test_labels());
    assert!(pa.f1 > 0.8, "one-liner on KPI-like: PA F1 {:.3}", pa.f1);

    // On an archive dataset the same one-liner collapses.
    let ds = ucrgen::archive::generate_dataset(7, 8);
    let wrapped = ucrgen::oneliner::from_ucr(&ds);
    let pred = oneliner_predict(&wrapped, 4.0);
    let pa = evalkit::pa::prf_pa(&pred, &wrapped.test_labels());
    assert!(
        pa.f1 < 0.5,
        "one-liner should fail on archive data, got PA F1 {:.3}",
        pa.f1
    );
}

#[test]
fn affiliation_punishes_flag_everything_on_dense_anomalies() {
    let d = swat_like(7, 1500, 3000, 3);
    let labels = d.test_labels();
    let all = vec![true; labels.len()];
    let aff = evalkit::affiliation::affiliation_prf(&all, &labels);
    // Recall is perfect but precision must be visibly below 1.
    assert!(aff.recall > 0.99);
    assert!(aff.precision < 0.85, "precision {:.3}", aff.precision);
}

#[test]
fn pak_interpolates_between_pw_and_pa_across_k() {
    let d = kpi_like(8, 1000, 2000, 5);
    let labels = d.test_labels();
    let scores = RandomDetector::new(2).score(d.train(), d.test());
    let thr = evalkit::threshold::quantile(&scores, 0.9);
    let pred = evalkit::threshold::apply(&scores, thr);
    let pw = evalkit::pointwise::prf(&pred, &labels).f1;
    let pa = evalkit::pa::prf_pa(&pred, &labels).f1;
    let mut last = f64::INFINITY;
    for k in [1.0, 25.0, 50.0, 75.0, 100.0] {
        let f1 = evalkit::pak::prf_at_k(&pred, &labels, k).f1;
        assert!(f1 <= last + 1e-12, "PA%K not monotone at K={k}");
        assert!(f1 <= pa + 1e-12 && f1 >= pw - 1e-12);
        last = f1;
    }
}
