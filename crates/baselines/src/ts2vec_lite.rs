//! TS2Vec-lite (after Yue et al., AAAI 2022).
//!
//! Mechanism kept: a dilated-convolution encoder producing *per-timestamp*
//! representations, trained contrastively over two random overlapping crops
//! of each window — timestamps shared by both crops are positives (their two
//! views should match), other timestamps in the batch are negatives.
//!
//! Simplifications vs the original (documented in DESIGN.md): one pyramid
//! level instead of hierarchical max-pool losses, and anomaly scoring by
//! embedding distance to the training distribution (the original's masked-
//! reconstruction protocol needs token masking our substrate does not model).
//! The Table III behaviour this preserves: excellent representations of
//! *global* shape, weak point-wise localisation → low F1(PW)/PA%K.

use crate::common::{make_segmenter, scatter_window_scores, znorm_windows};
use crate::Detector;
use neuro::graph::{Graph, NodeId};
use neuro::layers::ResidualBlock;
use neuro::optim::Adam;
use neuro::Tensor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// TS2Vec-lite configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ts2VecConfig {
    pub hidden: usize,
    pub depth: usize,
    pub epochs: usize,
    pub batch: usize,
    pub lr: f64,
    pub seed: u64,
    /// Crop length as a fraction of the window.
    pub crop_frac: f64,
}

impl Default for Ts2VecConfig {
    fn default() -> Self {
        Ts2VecConfig {
            hidden: 16,
            depth: 3,
            epochs: 8,
            batch: 8,
            lr: 1e-3,
            seed: 0,
            crop_frac: 0.75,
        }
    }
}

pub struct Ts2VecLite {
    pub cfg: Ts2VecConfig,
}

impl Ts2VecLite {
    pub fn new(cfg: Ts2VecConfig) -> Self {
        Ts2VecLite { cfg }
    }
}

struct Encoder {
    blocks: Vec<ResidualBlock>,
}

impl Encoder {
    fn new(rng: &mut StdRng, cfg: &Ts2VecConfig) -> Self {
        let blocks = (0..cfg.depth)
            .map(|i| {
                let cin = if i == 0 { 1 } else { cfg.hidden };
                ResidualBlock::new(rng, cin, cfg.hidden, 3, 1 << i.min(8))
            })
            .collect();
        Encoder { blocks }
    }

    fn params(&self) -> Vec<neuro::graph::Param> {
        self.blocks.iter().flat_map(|b| b.params()).collect()
    }

    /// `[B, 1, L] → [B, hidden, L]`.
    fn forward(&self, g: &mut Graph, x: NodeId) -> NodeId {
        let mut h = x;
        for b in &self.blocks {
            h = b.forward(g, h);
        }
        h
    }

    /// Mean-pool over time → `[B, hidden]`, L2-normalised.
    fn pooled(&self, g: &mut Graph, x: NodeId) -> NodeId {
        let h = self.forward(g, x);
        let shape = g.value(h).shape().to_vec();
        // lint-allow(index-stampede): the conv stack's output is [B,C,L] by
        // construction, so all three subscripts are in range.
        let (bsz, c, l) = (shape[0], shape[1], shape[2]);
        let flat = g.reshape(h, &[bsz * c, l]);
        let sums = g.row_sum(flat);
        let means = g.scale(sums, 1.0 / l as f32);
        let pooled = g.reshape(means, &[bsz, c]);
        g.l2_normalize_rows(pooled)
    }
}

fn to_tensor(slices: &[&[f64]]) -> Tensor {
    let l = slices[0].len();
    let mut data = Vec::with_capacity(slices.len() * l);
    for s in slices {
        data.extend(s.iter().map(|&v| v as f32));
    }
    Tensor::from_vec(&[slices.len(), 1, l], data)
}

impl Detector for Ts2VecLite {
    fn name(&self) -> String {
        "TS2Vec".into()
    }

    fn score(&mut self, train: &[f64], test: &[f64]) -> Vec<f64> {
        let seg = make_segmenter(train);
        let (_, slices) = znorm_windows(train, &seg);
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        let enc = Encoder::new(&mut rng, &self.cfg);
        let mut opt = Adam::new(enc.params(), self.cfg.lr as f32);

        let l = slices.first().map(|s| s.len()).unwrap_or(seg.window);
        let crop = ((l as f64 * self.cfg.crop_frac) as usize).max(4).min(l);

        let mut idxs: Vec<usize> = (0..slices.len()).collect();
        for _ in 0..self.cfg.epochs {
            idxs.shuffle(&mut rng);
            for chunk in idxs.chunks(self.cfg.batch) {
                if chunk.len() < 2 {
                    continue;
                }
                // Two random crops per window; instance-level contrast: the
                // two pooled views of one window are positives, all other
                // windows' views are negatives (NT-Xent).
                let max_off = l - crop;
                let views: Vec<(Vec<f64>, Vec<f64>)> = chunk
                    .iter()
                    .map(|&i| {
                        let o1 = if max_off > 0 {
                            rng.random_range(0..=max_off)
                        } else {
                            0
                        };
                        let o2 = if max_off > 0 {
                            rng.random_range(0..=max_off)
                        } else {
                            0
                        };
                        (
                            slices[i][o1..o1 + crop].to_vec(),
                            slices[i][o2..o2 + crop].to_vec(),
                        )
                    })
                    .collect();
                let v1: Vec<&[f64]> = views.iter().map(|(a, _)| a.as_slice()).collect();
                let v2: Vec<&[f64]> = views.iter().map(|(_, b)| b.as_slice()).collect();

                let mut g = Graph::new();
                let x1 = g.input(to_tensor(&v1));
                let x2 = g.input(to_tensor(&v2));
                let z1 = enc.pooled(&mut g, x1);
                let z2 = enc.pooled(&mut g, x2);
                // NT-Xent: logits = z1·z2ᵀ; diagonal entries are positives.
                let z2t = g.transpose(z2);
                let logits = g.matmul(z1, z2t);
                let logits = g.scale(logits, 10.0); // τ = 0.1
                let probs = g.softmax_rows(logits);
                let bsz = chunk.len();
                let mut eye = Tensor::zeros(&[bsz, bsz]);
                for i in 0..bsz {
                    eye.data_mut()[i * bsz + i] = 1.0;
                }
                let eye = g.input(eye);
                let picked = g.mul(probs, eye);
                let diag = g.row_sum(picked);
                let logp = g.ln(diag);
                let nll = g.neg(logp);
                let loss = g.mean_all(nll);
                if g.value(loss).item().is_finite() {
                    g.backward(loss);
                    opt.step();
                } else {
                    opt.zero_grad();
                }
            }
        }

        // Scoring: pooled-embedding distance to the nearest training window.
        let train_embs = embed_all(&enc, &slices);
        let (windows, tslices) = znorm_windows(test, &seg);
        let test_embs = embed_all(&enc, &tslices);
        let scores: Vec<f64> = test_embs
            .iter()
            .map(|e| {
                train_embs
                    .iter()
                    .map(|t| e.iter().zip(t).map(|(a, b)| (a - b) * (a - b)).sum::<f32>() as f64)
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        scatter_window_scores(&windows, &scores, test.len())
    }
}

fn embed_all(enc: &Encoder, slices: &[Vec<f64>]) -> Vec<Vec<f32>> {
    let mut out = Vec::with_capacity(slices.len());
    for chunk in slices.chunks(16) {
        let refs: Vec<&[f64]> = chunk.iter().map(|s| s.as_slice()).collect();
        let mut g = Graph::new();
        let x = g.input(to_tensor(&refs));
        let z = enc.pooled(&mut g, x);
        for i in 0..chunk.len() {
            out.push(g.value(z).row(i).to_vec());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn quick() -> Ts2VecConfig {
        Ts2VecConfig {
            hidden: 8,
            depth: 2,
            epochs: 2,
            batch: 4,
            ..Default::default()
        }
    }

    fn dataset() -> (Vec<f64>, Vec<f64>, std::ops::Range<usize>) {
        let p = 25.0;
        let full: Vec<f64> = (0..900).map(|i| (2.0 * PI * i as f64 / p).sin()).collect();
        let mut test = full[500..].to_vec();
        for i in 200..260 {
            test[i] = (6.0 * PI * i as f64 / p).sin();
        }
        (full[..500].to_vec(), test, 200..260)
    }

    #[test]
    fn score_shape() {
        let (train, test, _) = dataset();
        let s = Ts2VecLite::new(quick()).score(&train, &test);
        assert_eq!(s.len(), test.len());
        assert!(s.iter().all(|v| v.is_finite() && *v >= 0.0));
    }

    #[test]
    fn anomalous_window_is_furthest_from_training_manifold() {
        let (train, test, anom) = dataset();
        let s = Ts2VecLite::new(quick()).score(&train, &test);
        let argmax = s
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        // Max-scoring point should be within a window length of the anomaly.
        let w = make_segmenter(&train).window;
        assert!(
            argmax + w >= anom.start && argmax < anom.end + w,
            "argmax {argmax} vs anomaly {anom:?}"
        );
    }

    #[test]
    fn deterministic() {
        let (train, test, _) = dataset();
        let a = Ts2VecLite::new(quick()).score(&train, &test);
        let b = Ts2VecLite::new(quick()).score(&train, &test);
        assert_eq!(a, b);
    }
}
