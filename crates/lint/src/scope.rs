//! Scope and symbol resolution for the determinism rules.
//!
//! A single pass over the significant-token stream collects every place a
//! name acquires a type the rules care about:
//!
//! * **struct/enum fields** — `name: Type` inside item braces, so
//!   `self.pending.iter()` (or `st.pending.iter()` through a guard) can be
//!   resolved to the field's declared collection type;
//! * **`let` bindings** — from the annotation (`let m: HashMap<..>`) or,
//!   failing that, inferred from the initializer head (`HashMap::new()`,
//!   `HashSet::with_capacity(..)`, `…collect::<HashMap<_, _>>()`);
//! * **function parameters** — `name: &mut HashMap<..>` and friends.
//!
//! Types are reduced to a coarse [`TypeTag`]; resolution is deliberately an
//! *under*-approximation (unknown stays unknown) so the rules it feeds err
//! toward silence, not noise. Deref-transparent wrappers (`Arc`, `Mutex`,
//! `RefCell`, …) are pierced, because `m.lock().unwrap().iter()` still
//! iterates the map inside.
//!
//! Shadowing is handled positionally: a use site resolves to the latest
//! binding declared before it (file order), falling back to the field
//! table. Block-precise scoping is not modelled — for lint purposes the
//! last-binding-wins approximation has not produced a false positive on
//! this workspace, and anything it gets wrong can carry a `lint-allow`.

use crate::tokenizer::{Tok, TokKind};
use std::collections::BTreeMap;

/// Coarse type classification — just enough for the determinism rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypeTag {
    /// `std::collections::HashMap` (arbitrary iteration order).
    HashMap,
    /// `std::collections::HashSet` (arbitrary iteration order).
    HashSet,
    /// `BTreeMap` / `BTreeSet` (sorted, deterministic iteration).
    BTree,
    /// `f32` / `f64`.
    Float,
    /// Anything else we could name but do not track.
    Other,
}

/// Wrappers that are transparent for iteration purposes: a receiver typed
/// `Arc<Mutex<HashMap<..>>>` still iterates a hash map after `.lock()`.
const WRAPPERS: &[&str] = &[
    "Arc", "Rc", "Box", "Mutex", "RwLock", "RefCell", "Cell", "Option",
];

/// Symbol table for one file.
#[derive(Debug, Default)]
pub struct Symbols {
    /// Field name → tag. Conflicting declarations across structs collapse
    /// to `None` (unknown) so resolution stays an under-approximation.
    fields: BTreeMap<String, Option<TypeTag>>,
    /// `(name, tag, declaration byte offset)` for lets and fn params, in
    /// file order.
    locals: Vec<(String, TypeTag, usize)>,
}

impl Symbols {
    /// Resolve `name` used as a plain local at byte offset `at`: the
    /// latest prior binding wins; fields are the fallback (method bodies
    /// often alias `self` through a guard variable).
    pub fn resolve_local(&self, name: &str, at: usize) -> Option<TypeTag> {
        self.locals
            .iter()
            .rev()
            .find(|(n, _, decl)| n == name && *decl <= at)
            .map(|&(_, tag, _)| tag)
            .or_else(|| self.resolve_field(name))
    }

    /// Resolve `name` used as a field access (`something.name`).
    pub fn resolve_field(&self, name: &str) -> Option<TypeTag> {
        self.fields.get(name).copied().flatten()
    }

    fn record_field(&mut self, name: String, tag: TypeTag) {
        match self.fields.get_mut(&name) {
            None => {
                self.fields.insert(name, Some(tag));
            }
            Some(existing) => {
                if *existing != Some(tag) {
                    *existing = None; // conflicting declarations: unknown
                }
            }
        }
    }
}

/// Map a type-head identifier to its tag.
fn tag_of_ident(name: &str) -> TypeTag {
    match name {
        "HashMap" => TypeTag::HashMap,
        "HashSet" => TypeTag::HashSet,
        "BTreeMap" | "BTreeSet" => TypeTag::BTree,
        "f32" | "f64" => TypeTag::Float,
        _ => TypeTag::Other,
    }
}

/// Token-stream cursor over significant tokens.
struct Cur<'a> {
    src: &'a [u8],
    tokens: &'a [Tok],
    sig: &'a [usize],
}

impl<'a> Cur<'a> {
    fn text(&self, i: usize) -> std::borrow::Cow<'a, str> {
        self.tokens[self.sig[i]].text(self.src)
    }

    fn kind(&self, i: usize) -> TokKind {
        self.tokens[self.sig[i]].kind
    }

    fn start(&self, i: usize) -> usize {
        self.tokens[self.sig[i]].start
    }

    fn len(&self) -> usize {
        self.sig.len()
    }

    /// Are significant tokens `i` and `i+1` byte-adjacent (`::`, `+=` …)?
    fn adjacent(&self, i: usize) -> bool {
        if i + 1 >= self.len() {
            return false;
        }
        let a = &self.tokens[self.sig[i]];
        let b = &self.tokens[self.sig[i + 1]];
        a.end == b.start
    }

    /// Is the significant token at `i` the first `:` of a `::`?
    fn is_path_sep(&self, i: usize) -> bool {
        i + 1 < self.len() && self.text(i) == ":" && self.text(i + 1) == ":" && self.adjacent(i)
    }

    /// Is the `:` at `i` a single type-ascription colon (not part of `::`)?
    fn is_single_colon(&self, i: usize) -> bool {
        self.text(i) == ":"
            && !self.is_path_sep(i)
            && !(i >= 1 && self.text(i - 1) == ":" && self.adjacent(i - 1))
    }
}

/// Extract the type head from significant tokens `[from, to)`: pierce
/// references, lifetimes, path prefixes and transparent wrappers, stop at
/// the first meaningful type identifier.
fn type_head(cur: &Cur<'_>, from: usize, to: usize) -> Option<TypeTag> {
    let mut i = from;
    let to = to.min(cur.len());
    let mut budget = 24usize; // types the rules care about are short
    while i < to && budget > 0 {
        budget -= 1;
        match cur.kind(i) {
            TokKind::Ident => {
                let name = cur.text(i);
                if matches!(name.as_ref(), "dyn" | "impl" | "mut" | "const" | "ref") {
                    i += 1;
                    continue;
                }
                // Path segment (`std::collections::HashMap`): skip to the
                // segment after the `::`.
                if i + 2 < to && cur.is_path_sep(i + 1) {
                    i += 3;
                    continue;
                }
                if WRAPPERS.contains(&name.as_ref()) {
                    i += 1;
                    continue; // descend into the wrapper's generics
                }
                return Some(tag_of_ident(&name));
            }
            TokKind::Lifetime => i += 1,
            _ => i += 1, // `&`, `<`, `(`, …
        }
    }
    None
}

/// Infer a tag from an initializer expression starting at significant
/// index `from` (just after the `=`), ending before `to`.
fn init_head(cur: &Cur<'_>, from: usize, to: usize) -> TypeTag {
    let to = to.min(cur.len());
    let mut i = from;
    // Skip leading `&` / `mut`.
    while i < to && matches!(cur.text(i).as_ref(), "&" | "mut") {
        i += 1;
    }
    if i >= to {
        return TypeTag::Other;
    }
    // Float literal head: `0.0`, `1e-3f64` …
    if cur.kind(i) == TokKind::Num && num_is_float(&cur.text(i)) {
        return TypeTag::Float;
    }
    // Leading path: collect `A :: B :: C` segment idents; any segment that
    // names a tracked collection decides the tag (`HashMap::new()`,
    // `std::collections::HashSet::with_capacity(8)`).
    let mut j = i;
    while j < to && cur.kind(j) == TokKind::Ident {
        let tag = tag_of_ident(&cur.text(j));
        if tag != TypeTag::Other {
            return tag;
        }
        if j + 2 < to && cur.is_path_sep(j + 1) {
            j += 3;
        } else {
            break;
        }
    }
    // `…collect::<HashMap<_, _>>()` anywhere in the initializer.
    let mut k = i;
    let scan_end = to.min(i + 80);
    while k + 3 < scan_end {
        if cur.text(k) == "collect" && cur.is_path_sep(k + 1) && cur.text(k + 3) == "<" {
            if let Some(tag) = type_head(cur, k + 4, scan_end) {
                return tag;
            }
        }
        k += 1;
    }
    TypeTag::Other
}

/// Is this numeric literal float-shaped (`1.5`, `2e-3`, `4f64`)?
pub fn num_is_float(text: &str) -> bool {
    if text.starts_with("0x") || text.starts_with("0X") {
        return false;
    }
    text.contains('.')
        || text.ends_with("f32")
        || text.ends_with("f64")
        || text.contains('e')
        || text.contains('E')
}

/// Find the end (exclusive, in significant indices) of the statement
/// containing `i`: the next `;` at the same nesting depth, or the end of
/// the enclosing block.
fn statement_end(cur: &Cur<'_>, i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < cur.len() {
        match cur.text(j).as_ref() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth < 0 {
                    return j;
                }
            }
            ";" if depth == 0 => return j,
            _ => {}
        }
        j += 1;
    }
    j
}

/// Build the symbol table for one file.
pub fn analyze(src: &[u8], tokens: &[Tok], sig: &[usize]) -> Symbols {
    let cur = Cur { src, tokens, sig };
    let mut sym = Symbols::default();
    let n = cur.len();
    let mut i = 0usize;
    while i < n {
        match cur.text(i).as_ref() {
            // Struct/enum bodies: record `name: Type` pairs at any depth
            // inside the item braces (enum variant fields included).
            "struct" | "enum" | "union" => {
                // Find the body `{` before any terminating `;` (tuple
                // structs have none).
                let mut j = i + 1;
                let mut body = None;
                while j < n && j < i + 40 {
                    match cur.text(j).as_ref() {
                        "{" => {
                            body = Some(j);
                            break;
                        }
                        ";" => break,
                        _ => j += 1,
                    }
                }
                if let Some(open) = body {
                    let mut depth = 0i32;
                    let mut k = open;
                    while k < n {
                        match cur.text(k).as_ref() {
                            "{" | "(" | "[" => depth += 1,
                            "}" | ")" | "]" => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {
                                if cur.kind(k) == TokKind::Ident
                                    && k + 1 < n
                                    && cur.is_single_colon(k + 1)
                                {
                                    let end = statement_end(&cur, k + 2).min(k + 26);
                                    if let Some(tag) = type_head(&cur, k + 2, end) {
                                        sym.record_field(cur.text(k).into_owned(), tag);
                                    }
                                }
                            }
                        }
                        k += 1;
                    }
                    i = k;
                }
                i += 1;
            }
            // `let [mut] name [: Type] = init;`
            "let" => {
                let mut j = i + 1;
                if j < n && cur.text(j) == "mut" {
                    j += 1;
                }
                if j < n && cur.kind(j) == TokKind::Ident {
                    let name = cur.text(j).into_owned();
                    let decl_at = cur.start(j);
                    let stmt_end = statement_end(&cur, j + 1);
                    let mut tag = None;
                    if j + 1 < n && cur.is_single_colon(j + 1) {
                        // Annotation runs until the `=` (or statement end).
                        let mut eq = j + 2;
                        while eq < stmt_end && cur.text(eq) != "=" {
                            eq += 1;
                        }
                        tag = type_head(&cur, j + 2, eq);
                        if eq < stmt_end {
                            // Annotated `Other` can still be sharpened by a
                            // collection initializer (e.g. `let m: Foo =`
                            // stays Other; that is fine).
                        }
                    } else if j + 1 < n && cur.text(j + 1) == "=" {
                        tag = Some(init_head(&cur, j + 2, stmt_end));
                    }
                    if let Some(tag) = tag {
                        sym.locals.push((name, tag, decl_at));
                    }
                    i = j + 1;
                    continue;
                }
                i += 1;
            }
            // `fn name(params…)`: record `name: Type` pairs in the header.
            "fn" => {
                let mut j = i + 1;
                // fn name, optional generics to skip coarsely.
                while j < n && cur.text(j) != "(" && cur.text(j) != "{" && cur.text(j) != ";" {
                    j += 1;
                }
                if j < n && cur.text(j) == "(" {
                    let mut depth = 0i32;
                    let mut k = j;
                    while k < n {
                        match cur.text(k).as_ref() {
                            "(" | "[" | "{" => depth += 1,
                            ")" | "]" | "}" => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {
                                if depth == 1
                                    && cur.kind(k) == TokKind::Ident
                                    && k + 1 < n
                                    && cur.is_single_colon(k + 1)
                                {
                                    if let Some(tag) = type_head(&cur, k + 2, (k + 26).min(n)) {
                                        sym.locals.push((
                                            cur.text(k).into_owned(),
                                            tag,
                                            cur.start(k),
                                        ));
                                    }
                                }
                            }
                        }
                        k += 1;
                    }
                    i = k;
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    sym
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::tokenize;

    fn symbols(src: &str) -> (Vec<Tok>, Vec<usize>, Symbols) {
        let tokens = tokenize(src.as_bytes());
        let sig: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                !matches!(
                    t.kind,
                    TokKind::Ws | TokKind::LineComment | TokKind::BlockComment
                )
            })
            .map(|(i, _)| i)
            .collect();
        let sym = analyze(src.as_bytes(), &tokens, &sig);
        (tokens, sig, sym)
    }

    #[test]
    fn struct_fields_resolve() {
        let src = "struct BatchState { pending: HashMap<String, Vec<Job>>, busy: HashSet<String>, order: BTreeMap<u32, u32>, n: usize }";
        let (_, _, sym) = symbols(src);
        assert_eq!(sym.resolve_field("pending"), Some(TypeTag::HashMap));
        assert_eq!(sym.resolve_field("busy"), Some(TypeTag::HashSet));
        assert_eq!(sym.resolve_field("order"), Some(TypeTag::BTree));
        assert_eq!(sym.resolve_field("n"), Some(TypeTag::Other));
        assert_eq!(sym.resolve_field("missing"), None);
    }

    #[test]
    fn conflicting_fields_collapse_to_unknown() {
        let src = "struct A { m: HashMap<u32, u32> } struct B { m: BTreeMap<u32, u32> }";
        let (_, _, sym) = symbols(src);
        assert_eq!(sym.resolve_field("m"), None);
    }

    #[test]
    fn let_annotation_and_inference() {
        let src = "fn f() {\n  let a: HashMap<u32, u32> = make();\n  let b = HashSet::new();\n  let c = std::collections::HashMap::with_capacity(8);\n  let d: Vec<u32> = xs.iter().collect();\n  let e = xs.iter().copied().collect::<HashMap<u32, u32>>();\n  let x = 0.5;\n}";
        let (_, _, sym) = symbols(src);
        let at = src.len();
        assert_eq!(sym.resolve_local("a", at), Some(TypeTag::HashMap));
        assert_eq!(sym.resolve_local("b", at), Some(TypeTag::HashSet));
        assert_eq!(sym.resolve_local("c", at), Some(TypeTag::HashMap));
        assert_eq!(sym.resolve_local("d", at), Some(TypeTag::Other));
        assert_eq!(sym.resolve_local("e", at), Some(TypeTag::HashMap));
        assert_eq!(sym.resolve_local("x", at), Some(TypeTag::Float));
    }

    #[test]
    fn wrappers_are_pierced() {
        let src = "struct S { slots: Arc<Mutex<HashMap<String, u32>>> } fn f(m: &mut HashMap<u32, u32>, s: &BTreeSet<u32>) {}";
        let (_, _, sym) = symbols(src);
        assert_eq!(sym.resolve_field("slots"), Some(TypeTag::HashMap));
        assert_eq!(sym.resolve_local("m", src.len()), Some(TypeTag::HashMap));
        assert_eq!(sym.resolve_local("s", src.len()), Some(TypeTag::BTree));
    }

    #[test]
    fn shadowing_resolves_positionally() {
        let src = "fn f() { let m = HashMap::new(); use_it(&m); let m = BTreeMap::new(); }";
        let (_, _, sym) = symbols(src);
        let use_at = src.find("use_it").expect("use site");
        assert_eq!(sym.resolve_local("m", use_at), Some(TypeTag::HashMap));
        assert_eq!(sym.resolve_local("m", src.len()), Some(TypeTag::BTree));
    }

    #[test]
    fn float_literals_classified() {
        assert!(num_is_float("0.5"));
        assert!(num_is_float("1e-3"));
        assert!(num_is_float("2f64"));
        assert!(!num_is_float("42"));
        assert!(!num_is_float("0xFE"));
    }
}
