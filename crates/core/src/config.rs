//! TriAD hyper-parameters and ablation switches.

use tsaug::AugmentConfig;
use tsops::NumericMode;

/// Full configuration of the TriAD pipeline. Defaults are the paper's
/// settings (Sec. IV-A3/IV-A4): 6 residual blocks, `h_d = 32`, `α = 0.4`,
/// batch 8, lr 0.001, 20 epochs, window = 2.5 periods, stride = L/4.
#[derive(Debug, Clone, PartialEq)]
pub struct TriadConfig {
    /// Contrastive-loss blend `α` (Eq. 7): weight of the inter-domain term.
    pub alpha: f64,
    /// Number of residual blocks (dilation doubles per block).
    pub depth: usize,
    /// Hidden/representation channel count `h_d`.
    pub hidden: usize,
    /// Convolution kernel size (odd).
    pub kernel: usize,
    /// Batch size.
    pub batch: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// InfoNCE temperature applied to dot products of the L2-normalised
    /// embeddings (documented deviation; see DESIGN.md).
    pub temperature: f64,
    /// Fraction of windows held out as the validation split (Sec. IV-A3).
    pub validation_frac: f64,
    /// Window length in periods (paper: 2.5).
    pub window_periods: f64,
    /// Stride as a fraction of the window (paper: 1/4).
    pub stride_frac: f64,
    /// Override the estimated period (`None` = estimate from training data).
    pub period_override: Option<usize>,
    /// Augmentation parameters (Sec. III-A).
    pub augment: AugmentConfig,
    /// Candidates per domain (`Z`; the paper uses 1).
    pub top_z: usize,
    /// Enable the normalised/weighted scoring the paper sketches as future
    /// work (Sec. III-D3): discord votes are scaled by 1/#lengths and the
    /// window vote by [`Self::triad_vote_weight`]. Off by default (Eq. 8).
    pub weighted_voting: bool,
    /// Window-vote weight when [`Self::weighted_voting`] is on.
    pub triad_vote_weight: f64,
    /// Padding around the selected window before MERLIN, in windows
    /// (case study: one window each side).
    pub merlin_pad_windows: f64,
    /// MERLIN sweep: minimum discord length.
    pub merlin_min_len: usize,
    /// MERLIN sweep: maximum discord length (clamped to the window length).
    pub merlin_max_len: usize,
    /// MERLIN sweep: length step (1 = paper; larger = faster).
    pub merlin_step: usize,
    /// RNG seed (weights, augmentation, batching).
    pub seed: u64,
    /// Worker threads for the deterministic parallel runtime
    /// (`crates/parallel`): 0 = auto (the `TRIAD_THREADS` environment
    /// variable, else the machine's parallelism). The runtime is
    /// thread-count invariant — results are bit-identical at any value —
    /// so this is a pure performance knob and is *not* persisted with the
    /// model.
    pub threads: usize,
    /// Force structured tracing on (`obs`): `fit`/`detect` open per-stage
    /// spans readable via `triad trace`. `false` defers to the
    /// `TRIAD_TRACE` environment variable. Tracing never changes detection
    /// output (bit-identical on or off), so like `threads` this is a pure
    /// observability knob and is *not* persisted with the model.
    pub trace: bool,
    /// Gradient-accumulation shards per training batch. The batch is split
    /// into this many fixed contiguous sub-batches; each shard's
    /// contrastive loss is backpropagated independently and the gradients
    /// are summed in shard order before one optimizer step. 1 (default)
    /// keeps the paper's whole-batch objective; values > 1 enable
    /// data-parallel training. The shard structure depends only on this
    /// field — never on the thread count — so results stay bit-identical
    /// across thread counts.
    pub grad_shards: usize,
    /// Numeric kernel family for the discord stage: `Exact` (default,
    /// bit-identical scalar loops) or `Fast` (MASS/FFT profile kernels,
    /// tolerance-equivalent — same discord indices, distances within 1e-6
    /// relative; see DESIGN.md "Numeric modes"). Both modes are
    /// bit-identical across thread counts *within* themselves. Like
    /// [`Self::threads`] this never changes what the model *is*, so it is
    /// *not* persisted with the model.
    pub numeric_mode: NumericMode,
    /// Ablation switches (Fig. 9): which domains participate.
    pub use_temporal: bool,
    pub use_frequency: bool,
    pub use_residual: bool,
    /// Ablation switches: which loss terms participate.
    pub use_intra: bool,
    pub use_inter: bool,
}

impl Default for TriadConfig {
    fn default() -> Self {
        TriadConfig {
            alpha: 0.4,
            depth: 6,
            hidden: 32,
            kernel: 3,
            batch: 8,
            epochs: 20,
            lr: 1e-3,
            temperature: 1.0,
            validation_frac: 0.1,
            window_periods: 2.5,
            stride_frac: 0.25,
            period_override: None,
            augment: AugmentConfig::default(),
            top_z: 1,
            weighted_voting: false,
            triad_vote_weight: 1.0,
            merlin_pad_windows: 1.0,
            merlin_min_len: 3,
            merlin_max_len: 300,
            merlin_step: 1,
            seed: 0,
            threads: 0,
            trace: false,
            grad_shards: 1,
            numeric_mode: NumericMode::Exact,
            use_temporal: true,
            use_frequency: true,
            use_residual: true,
            use_intra: true,
            use_inter: true,
        }
    }
}

impl TriadConfig {
    /// Active domains after ablation switches.
    pub fn domains(&self) -> Vec<crate::Domain> {
        let mut d = Vec::with_capacity(3);
        if self.use_temporal {
            d.push(crate::Domain::Temporal);
        }
        if self.use_frequency {
            d.push(crate::Domain::Frequency);
        }
        if self.use_residual {
            d.push(crate::Domain::Residual);
        }
        d
    }

    /// Validate invariants the pipeline relies on.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.alpha) {
            return Err(format!("alpha {} outside [0,1]", self.alpha));
        }
        if self.depth == 0 || self.depth > 12 {
            return Err(format!("depth {} unreasonable", self.depth));
        }
        if self.hidden == 0 {
            return Err("hidden must be positive".into());
        }
        if self.kernel % 2 == 0 {
            return Err("kernel must be odd (same padding)".into());
        }
        if self.batch < 2 {
            return Err("contrastive loss needs batch ≥ 2".into());
        }
        if self.domains().is_empty() {
            return Err("at least one domain must be enabled".into());
        }
        if !self.use_intra && !self.use_inter {
            return Err("at least one loss term must be enabled".into());
        }
        if self.use_inter && self.domains().len() < 2 {
            return Err("inter-domain loss needs ≥ 2 domains".into());
        }
        if self.temperature <= 0.0 {
            return Err("temperature must be positive".into());
        }
        if self.merlin_min_len < 2 {
            return Err("merlin_min_len must be ≥ 2".into());
        }
        if self.top_z == 0 {
            return Err("top_z must be ≥ 1".into());
        }
        if self.weighted_voting && self.triad_vote_weight <= 0.0 {
            return Err("triad_vote_weight must be positive".into());
        }
        if self.grad_shards == 0 {
            return Err("grad_shards must be ≥ 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_papers_setting_and_valid() {
        let c = TriadConfig::default();
        assert_eq!(c.alpha, 0.4);
        assert_eq!(c.depth, 6);
        assert_eq!(c.hidden, 32);
        assert_eq!(c.batch, 8);
        assert_eq!(c.epochs, 20);
        assert_eq!(c.lr as f32, 1e-3);
        assert_eq!(c.window_periods, 2.5);
        assert!(c.validate().is_ok());
        assert_eq!(c.domains().len(), 3);
    }

    #[test]
    fn ablations_are_validated() {
        let mut c = TriadConfig::default();
        c.use_temporal = false;
        c.use_frequency = false;
        c.use_residual = false;
        assert!(c.validate().is_err());

        let mut c = TriadConfig::default();
        c.use_intra = false;
        c.use_inter = false;
        assert!(c.validate().is_err());

        // Inter-domain loss with a single domain is contradictory.
        let mut c = TriadConfig::default();
        c.use_frequency = false;
        c.use_residual = false;
        assert!(c.validate().is_err());
        c.use_inter = false;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn bad_scalars_rejected() {
        let mut c = TriadConfig::default();
        c.alpha = 1.5;
        assert!(c.validate().is_err());
        let mut c = TriadConfig::default();
        c.kernel = 4;
        assert!(c.validate().is_err());
        let mut c = TriadConfig::default();
        c.batch = 1;
        assert!(c.validate().is_err());
        let mut c = TriadConfig::default();
        c.temperature = 0.0;
        assert!(c.validate().is_err());
        let mut c = TriadConfig::default();
        c.top_z = 0;
        assert!(c.validate().is_err());
        let mut c = TriadConfig::default();
        c.weighted_voting = true;
        c.triad_vote_weight = 0.0;
        assert!(c.validate().is_err());
        c.triad_vote_weight = 2.0;
        assert!(c.validate().is_ok());
        let mut c = TriadConfig::default();
        c.grad_shards = 0;
        assert!(c.validate().is_err());
        c.grad_shards = 4;
        assert!(c.validate().is_ok());
    }
}
