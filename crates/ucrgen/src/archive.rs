//! Synthetic UCR-style anomaly archive.
//!
//! [`generate_archive`] produces `count` datasets (250 by default, matching
//! the real archive) that cycle through every signal family × anomaly kind
//! combination, with per-dataset random periods, noise floors and anomaly
//! lengths drawn from a Fig. 6-shaped distribution.
//!
//! Scale note (documented in DESIGN.md): real UCR series run to hundreds of
//! thousands of points. For a CPU-only reproduction the generator defaults to
//! ~25–40 training periods and ~18–28 test periods per dataset, and anomaly
//! lengths are capped at a third of the test split. The *relative* length
//! distribution keeps Fig. 6's shape: heavily weighted to short events with a
//! long tail.

use crate::anomaly::{inject, AnomalyKind};
use crate::signal::{SignalFamily, SignalSpec};
use crate::UcrDataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Archive-level configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArchiveConfig {
    /// Number of datasets (the real archive has 250).
    pub count: usize,
    /// Training length in periods (inclusive range).
    pub train_periods: (usize, usize),
    /// Test length in periods (inclusive range).
    pub test_periods: (usize, usize),
    /// Anomaly-magnitude multiplier: 1.0 = default; < 1 makes the magnitude
    /// anomaly families (noise / trend / level-shift) subtler. Structural
    /// families (duration / seasonal / contextual) are unaffected.
    pub intensity: f64,
    /// Background-noise multiplier: > 1 buries anomalies in a higher noise
    /// floor. `hard()` uses both knobs to de-saturate window-accuracy
    /// studies (Figs. 8–9).
    pub noise_mult: f64,
}

impl Default for ArchiveConfig {
    fn default() -> Self {
        ArchiveConfig {
            count: 250,
            train_periods: (25, 40),
            test_periods: (18, 28),
            intensity: 1.0,
            noise_mult: 1.0,
        }
    }
}

impl ArchiveConfig {
    /// A markedly harder archive: 40% anomaly magnitude, 3× noise floor.
    pub fn hard() -> Self {
        ArchiveConfig {
            intensity: 0.4,
            noise_mult: 3.0,
            ..Default::default()
        }
    }
}

/// Fig. 6-shaped anomaly-length sampler. Buckets (fraction of datasets →
/// length range) mirror the paper's histogram, then lengths are clamped to
/// what the test split can hold.
fn sample_anomaly_len<R: Rng>(rng: &mut R, test_len: usize, period: usize) -> usize {
    let u: f64 = rng.random();
    let raw = if u < 0.30 {
        rng.random_range(2..=50)
    } else if u < 0.55 {
        rng.random_range(51..=100)
    } else if u < 0.75 {
        rng.random_range(101..=200)
    } else if u < 0.90 {
        rng.random_range(201..=400)
    } else if u < 0.97 {
        rng.random_range(401..=800)
    } else {
        rng.random_range(801..=1700)
    };
    // An event must fit comfortably inside the test split and should span at
    // least a noticeable fraction of a cycle.
    raw.clamp(period / 4, (test_len / 3).max(4)).max(2)
}

/// Generate one dataset deterministically from `(master_seed, id)`.
///
/// ```
/// let ds = ucrgen::archive::generate_dataset(7, 13);
/// assert!(ds.validate().is_ok());
/// assert!(ds.anomaly.start >= ds.train_end); // training split is clean
/// assert!(ds.test_labels().iter().any(|&b| b)); // exactly one event exists
/// ```
pub fn generate_dataset(master_seed: u64, id: usize) -> UcrDataset {
    let mut rng = StdRng::seed_from_u64(master_seed ^ (id as u64).wrapping_mul(0x9E3779B97F4A7C15));
    let family = SignalFamily::ALL[id % SignalFamily::ALL.len()];
    let kind = AnomalyKind::ALL[(id / SignalFamily::ALL.len()) % AnomalyKind::ALL.len()];
    let cfg = ArchiveConfig::default();
    build(&mut rng, id, family, kind, &cfg)
}

/// Generate the full archive.
///
/// Runs over the ambient parallel runtime: each dataset is a pure function
/// of `(master_seed, id, cfg)` with its own RNG stream, and `map_indexed`
/// reassembles in id order, so the output is bit-identical to the serial
/// loop at any thread count (`tests/archive_parallel.rs` pins this).
pub fn generate_archive(master_seed: u64, cfg: &ArchiveConfig) -> Vec<UcrDataset> {
    let ids: Vec<usize> = (1..=cfg.count).collect();
    let par = parallel::ambient().for_work(ids.len(), 4);
    parallel::map_indexed(par, &ids, |_, &id| {
        let mut rng =
            StdRng::seed_from_u64(master_seed ^ (id as u64).wrapping_mul(0x9E3779B97F4A7C15));
        let family = SignalFamily::ALL[id % SignalFamily::ALL.len()];
        let kind = AnomalyKind::ALL[(id / SignalFamily::ALL.len()) % AnomalyKind::ALL.len()];
        build(&mut rng, id, family, kind, cfg)
    })
}

fn build(
    rng: &mut StdRng,
    id: usize,
    family: SignalFamily,
    kind: AnomalyKind,
    cfg: &ArchiveConfig,
) -> UcrDataset {
    let mut spec = SignalSpec::random(rng, family);
    spec.noise *= cfg.noise_mult;
    let p = spec.period;
    let train_len = p * rng.random_range(cfg.train_periods.0..=cfg.train_periods.1);
    let test_len = p * rng.random_range(cfg.test_periods.0..=cfg.test_periods.1);
    let total = train_len + test_len;
    let mut series = spec.generate(rng, total);

    let a_len = sample_anomaly_len(rng, test_len, p);
    // Keep one period of clean margin at both ends of the test split so the
    // event is always surrounded by normal context.
    let margin = p.min((test_len.saturating_sub(a_len)) / 2);
    let lo = train_len + margin;
    let hi = (total - margin).saturating_sub(a_len).max(lo);
    let a_start = if hi > lo {
        rng.random_range(lo..=hi)
    } else {
        lo
    };
    let a_range = a_start..(a_start + a_len).min(total);

    let local_std = tsops::stats::std_dev(&series[..train_len]) * cfg.intensity;
    inject(rng, &mut series, a_range.clone(), kind, local_std, p);

    let d = UcrDataset {
        id,
        name: format!("{:03}_{}_{}", id, family.name(), kind.name()),
        series,
        train_end: train_len,
        anomaly: a_range,
        period: p,
        kind,
    };
    debug_assert!(d.validate().is_ok(), "{:?}", d.validate());
    d
}

/// The `k` datasets with the shortest total length — the cohort Table IV's
/// MERLIN++ comparison uses (the paper takes the 62 shortest of 250).
pub fn shortest(datasets: &[UcrDataset], k: usize) -> Vec<&UcrDataset> {
    let mut refs: Vec<&UcrDataset> = datasets.iter().collect();
    refs.sort_by_key(|d| d.series.len());
    refs.truncate(k);
    refs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn archive_honours_the_contract() {
        let cfg = ArchiveConfig {
            count: 30,
            ..Default::default()
        };
        let arc = generate_archive(7, &cfg);
        assert_eq!(arc.len(), 30);
        for d in &arc {
            d.validate().unwrap_or_else(|e| panic!("{}: {e}", d.name));
            // Single event entirely inside the test split.
            assert!(d.anomaly.start >= d.train_end);
            assert!(d.anomaly.end <= d.series.len());
            // Training split carries a detectable period.
            let est = tsops::decompose::estimate_period(d.train(), d.train().len() / 2);
            assert!(est.is_some(), "{}: no period", d.name);
        }
    }

    #[test]
    fn archive_is_deterministic() {
        let cfg = ArchiveConfig {
            count: 5,
            ..Default::default()
        };
        let a = generate_archive(42, &cfg);
        let b = generate_archive(42, &cfg);
        assert_eq!(a, b);
        // And per-dataset generation matches the batch path.
        let d3 = generate_dataset(42, 3);
        assert_eq!(d3, a[2]);
    }

    #[test]
    fn archive_covers_all_families_and_kinds() {
        let arc = generate_archive(1, &ArchiveConfig::default());
        use std::collections::HashSet;
        let kinds: HashSet<_> = arc.iter().map(|d| d.kind).collect();
        assert_eq!(kinds.len(), AnomalyKind::ALL.len());
        let families: HashSet<_> = arc
            .iter()
            .map(|d| d.name.split('_').nth(1).unwrap().to_string())
            .collect();
        assert!(families.len() >= 4);
    }

    #[test]
    fn anomaly_lengths_follow_a_short_heavy_distribution() {
        let arc = generate_archive(3, &ArchiveConfig::default());
        let lens: Vec<usize> = arc.iter().map(|d| d.anomaly_len()).collect();
        let short = lens.iter().filter(|&&l| l <= 100).count();
        // Fig. 6: the majority of events are ≤ 100 points.
        assert!(
            short * 2 >= lens.len(),
            "only {short}/{} short anomalies",
            lens.len()
        );
        assert!(lens.iter().all(|&l| l >= 2));
    }

    #[test]
    fn shortest_selects_by_length() {
        let arc = generate_archive(
            9,
            &ArchiveConfig {
                count: 20,
                ..Default::default()
            },
        );
        let s = shortest(&arc, 5);
        assert_eq!(s.len(), 5);
        let max_short = s.iter().map(|d| d.series.len()).max().unwrap();
        let min_rest = arc
            .iter()
            .filter(|d| !s.iter().any(|x| x.id == d.id))
            .map(|d| d.series.len())
            .min()
            .unwrap();
        assert!(max_short <= min_rest);
    }

    #[test]
    fn hard_archive_has_subtler_anomalies() {
        // Magnitude-family anomalies shrink with intensity; noise floor grows.
        let easy_cfg = ArchiveConfig {
            count: 30,
            ..Default::default()
        };
        let hard_cfg = ArchiveConfig {
            count: 30,
            ..ArchiveConfig::hard()
        };
        let easy = generate_archive(5, &easy_cfg);
        let hard = generate_archive(5, &hard_cfg);
        // Same ids/kinds (seeded identically) but hard signals are noisier.
        let noise_of = |d: &UcrDataset| {
            let res = tsops::decompose::residual_of(d.train(), d.period.max(2));
            tsops::stats::std_dev(&res)
        };
        let easy_noise: f64 = easy.iter().map(|d| noise_of(d)).sum::<f64>() / 30.0;
        let hard_noise: f64 = hard.iter().map(|d| noise_of(d)).sum::<f64>() / 30.0;
        assert!(
            hard_noise > easy_noise * 1.5,
            "{hard_noise} vs {easy_noise}"
        );
        // Level-shift magnitude scales with intensity.
        let shift_of = |d: &UcrDataset| {
            let r = d.anomaly.clone();
            (tsops::stats::mean(&d.series[r.clone()]) - tsops::stats::mean(d.train())).abs()
        };
        let pairs: Vec<(f64, f64)> = easy
            .iter()
            .zip(&hard)
            .filter(|(e, _)| e.kind == AnomalyKind::LevelShift)
            .map(|(e, h)| (shift_of(e), shift_of(h)))
            .collect();
        assert!(!pairs.is_empty());
        let (es, hs): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
        let (em, hm) = (
            es.iter().sum::<f64>() / es.len() as f64,
            hs.iter().sum::<f64>() / hs.len() as f64,
        );
        assert!(hm < em, "hard shift {hm} !< easy shift {em}");
        // Contract still holds.
        for d in &hard {
            d.validate().unwrap();
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_dataset(1, 10);
        let b = generate_dataset(2, 10);
        assert_ne!(a.series, b.series);
    }
}
