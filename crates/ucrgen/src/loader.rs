//! Loader for the real UCR Anomaly Archive file format.
//!
//! Archive files are named
//! `NNN_UCR_Anomaly_<name>_<train_end>_<anomaly_begin>_<anomaly_end>.txt`
//! and contain one sample per line (some mirrors use whitespace-separated
//! values; both are accepted). Indices in the filename are 1-based and the
//! anomaly end is inclusive, per the archive's README — both are converted to
//! this crate's 0-based half-open convention.

use crate::anomaly::AnomalyKind;
use crate::UcrDataset;
use std::path::Path;

/// Metadata parsed from an archive filename.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UcrMeta {
    pub id: usize,
    pub name: String,
    pub train_end: usize,
    /// 0-based half-open anomaly range.
    pub anomaly: std::ops::Range<usize>,
}

/// Parse archive metadata out of a filename (not the full path).
pub fn parse_filename(filename: &str) -> Result<UcrMeta, String> {
    let stem = filename.strip_suffix(".txt").unwrap_or(filename);
    let parts: Vec<&str> = stem.split('_').collect();
    if parts.len() < 6 {
        return Err(format!("unrecognised UCR filename: {filename}"));
    }
    let id: usize = parts[0]
        .parse()
        .map_err(|_| format!("bad dataset id in {filename}"))?;
    let k = parts.len();
    let train_end: usize = parts[k - 3]
        .parse()
        .map_err(|_| format!("bad train_end in {filename}"))?;
    let a_begin: usize = parts[k - 2]
        .parse()
        .map_err(|_| format!("bad anomaly begin in {filename}"))?;
    let a_end: usize = parts[k - 1]
        .parse()
        .map_err(|_| format!("bad anomaly end in {filename}"))?;
    if a_begin == 0 || a_end < a_begin {
        return Err(format!("inconsistent anomaly bounds in {filename}"));
    }
    let name = parts[3..k - 3].join("_");
    Ok(UcrMeta {
        id,
        name,
        train_end,
        anomaly: (a_begin - 1)..a_end, // 1-based inclusive → 0-based half-open
    })
}

/// Parse the sample values of an archive data file.
pub fn parse_values(contents: &str) -> Result<Vec<f64>, String> {
    let mut out = Vec::new();
    for (lineno, line) in contents.lines().enumerate() {
        for tok in line.split_whitespace() {
            let v: f64 = tok
                .parse()
                .map_err(|_| format!("line {}: bad float {tok:?}", lineno + 1))?;
            out.push(v);
        }
    }
    if out.is_empty() {
        return Err("empty data file".into());
    }
    Ok(out)
}

/// Load one dataset from a real archive file.
pub fn load_file(path: &Path) -> Result<UcrDataset, String> {
    let filename = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or("path has no UTF-8 filename")?;
    let meta = parse_filename(filename)?;
    let contents = std::fs::read_to_string(path).map_err(|e| format!("{path:?}: {e}"))?;
    let series = parse_values(&contents)?;
    let d = UcrDataset {
        id: meta.id,
        name: meta.name,
        series,
        train_end: meta.train_end,
        anomaly: meta.anomaly,
        period: 0, // unknown; detectors estimate it from the training split
        kind: AnomalyKind::Contextual,
    };
    d.validate()?;
    Ok(d)
}

/// Load every `.txt` dataset in a directory, sorted by id.
pub fn load_dir(dir: &Path) -> Result<Vec<UcrDataset>, String> {
    let mut out = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{dir:?}: {e}"))?;
    for entry in entries {
        let entry = entry.map_err(|e| e.to_string())?;
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) == Some("txt") {
            out.push(load_file(&path)?);
        }
    }
    out.sort_by_key(|d| d.id);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_canonical_filename() {
        let m =
            parse_filename("025_UCR_Anomaly_DISTORTEDInternalBleeding_2700_5600_5626.txt").unwrap();
        assert_eq!(m.id, 25);
        assert_eq!(m.name, "DISTORTEDInternalBleeding");
        assert_eq!(m.train_end, 2700);
        assert_eq!(m.anomaly, 5599..5626);
    }

    #[test]
    fn parses_multi_underscore_names() {
        let m = parse_filename("117_UCR_Anomaly_some_long_name_100_200_210.txt").unwrap();
        assert_eq!(m.name, "some_long_name");
        assert_eq!(m.anomaly, 199..210);
    }

    #[test]
    fn rejects_malformed_names() {
        assert!(parse_filename("random.txt").is_err());
        assert!(parse_filename("001_UCR_Anomaly_x_abc_5_6.txt").is_err());
        assert!(parse_filename("001_UCR_Anomaly_x_10_0_5.txt").is_err()); // 1-based begin = 0
        assert!(parse_filename("001_UCR_Anomaly_x_10_8_5.txt").is_err()); // end < begin
    }

    #[test]
    fn parses_values_in_both_layouts() {
        assert_eq!(
            parse_values("1.0\n2.5\n-3\n").unwrap(),
            vec![1.0, 2.5, -3.0]
        );
        assert_eq!(parse_values("1 2 3\n4 5\n").unwrap().len(), 5);
        assert!(parse_values("").is_err());
        assert!(parse_values("1.0\nnot_a_number\n").is_err());
    }

    #[test]
    fn load_file_round_trip_via_tempfile() {
        let dir = std::env::temp_dir().join("ucrgen_loader_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("007_UCR_Anomaly_synthetic_60_81_90.txt");
        let data: Vec<String> = (0..120)
            .map(|i| format!("{:.3}", (i as f64 * 0.3).sin()))
            .collect();
        std::fs::write(&path, data.join("\n")).unwrap();
        let d = load_file(&path).unwrap();
        assert_eq!(d.id, 7);
        assert_eq!(d.train_end, 60);
        assert_eq!(d.anomaly, 80..90);
        assert_eq!(d.series.len(), 120);
        assert!(d.validate().is_ok());
        std::fs::remove_file(&path).ok();
    }
}
