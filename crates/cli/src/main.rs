//! `triad` — command-line front end. All logic lives in the library crate
//! (`triad_cli`) where it is unit-tested; this wrapper only handles process
//! boundaries.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match triad_cli::Cli::parse(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    match triad_cli::run(&cli) {
        Ok(lines) => {
            for l in lines {
                println!("{l}");
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
