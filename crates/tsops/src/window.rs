//! Time-series segmentation into fixed-length, strided windows.
//!
//! TriAD (Sec. IV-A2) segments each series into windows covering ~2.5 periods
//! with a stride of a quarter window. [`Segmenter`] owns that policy;
//! [`Windows`] is the resulting view with bookkeeping to map window indices
//! back to timestamp ranges (needed when votes are projected back onto the
//! series).

/// Iterator-free segmentation result: start offsets plus the shared length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Windows {
    /// Start timestamp of each window.
    pub starts: Vec<usize>,
    /// Common window length `L`.
    pub len: usize,
}

impl Windows {
    /// Number of windows `M`.
    pub fn count(&self) -> usize {
        self.starts.len()
    }

    pub fn is_empty(&self) -> bool {
        self.starts.is_empty()
    }

    /// Half-open timestamp range `[start, start+L)` of window `i`.
    pub fn range(&self, i: usize) -> std::ops::Range<usize> {
        let s = self.starts[i];
        s..s + self.len
    }

    /// Borrow the slice of window `i` out of the source series.
    pub fn slice<'a>(&self, series: &'a [f64], i: usize) -> &'a [f64] {
        &series[self.range(i)]
    }

    /// Indices of all windows whose range contains timestamp `t`.
    pub fn covering(&self, t: usize) -> Vec<usize> {
        self.starts
            .iter()
            .enumerate()
            .filter(|(_, &s)| s <= t && t < s + self.len)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Segmentation policy: window length and stride.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segmenter {
    pub window: usize,
    pub stride: usize,
}

impl Segmenter {
    pub fn new(window: usize, stride: usize) -> Self {
        assert!(window >= 1, "window length must be ≥ 1");
        assert!(stride >= 1, "stride must be ≥ 1");
        Segmenter { window, stride }
    }

    /// The paper's policy: `L = ceil(2.5 · period)`, `stride = max(1, L/4)`.
    pub fn for_period(period: usize) -> Self {
        let window = ((period as f64) * 2.5).ceil() as usize;
        let window = window.max(4);
        Segmenter::new(window, (window / 4).max(1))
    }

    /// Segment `series`, always including a final window flush with the end of
    /// the series so no suffix is ever left uncovered (an anomaly in the tail
    /// must land inside some window).
    pub fn segment(&self, series_len: usize) -> Windows {
        let l = self.window;
        if series_len < l {
            return Windows {
                starts: Vec::new(),
                len: l,
            };
        }
        let last = series_len - l;
        let mut starts: Vec<usize> = (0..=last).step_by(self.stride).collect();
        if starts.last() != Some(&last) {
            starts.push(last);
        }
        Windows { starts, len: l }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_whole_series() {
        let seg = Segmenter::new(10, 3);
        let w = seg.segment(25);
        assert_eq!(w.len, 10);
        assert_eq!(w.starts, vec![0, 3, 6, 9, 12, 15]);
        // Final window flush with the end.
        assert_eq!(*w.starts.last().unwrap() + w.len, 25);
    }

    #[test]
    fn exact_fit_has_single_flush_window() {
        let w = Segmenter::new(10, 4).segment(10);
        assert_eq!(w.starts, vec![0]);
    }

    #[test]
    fn too_short_series_yields_no_windows() {
        let w = Segmenter::new(10, 2).segment(7);
        assert!(w.is_empty());
        assert_eq!(w.count(), 0);
    }

    #[test]
    fn stride_divides_exactly_no_duplicate_tail() {
        let w = Segmenter::new(4, 2).segment(12);
        assert_eq!(w.starts, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn for_period_policy() {
        let s = Segmenter::for_period(140);
        assert_eq!(s.window, 350);
        assert_eq!(s.stride, 87);
        // Degenerate small periods still give usable windows.
        let s = Segmenter::for_period(1);
        assert!(s.window >= 4 && s.stride >= 1);
    }

    #[test]
    fn covering_finds_overlapping_windows() {
        let w = Segmenter::new(10, 3).segment(25);
        let c = w.covering(11);
        // Windows starting at 3, 6, 9 contain t=11; 12 starts after it.
        assert_eq!(c, vec![1, 2, 3]);
        assert!(w.covering(0) == vec![0]);
        assert!(w.covering(24).contains(&(w.count() - 1)));
    }

    #[test]
    fn slice_returns_expected_values() {
        let series: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let w = Segmenter::new(5, 5).segment(series.len());
        assert_eq!(w.slice(&series, 1), &[5.0, 6.0, 7.0, 8.0, 9.0]);
    }
}
