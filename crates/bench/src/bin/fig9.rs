//! Fig. 9 — ablation study: tri-window detection accuracy of the full model
//! vs dropping each encoder and each loss term.
//!
//! Flags: `--datasets N` (default 8), `--epochs N` (default 4).

use bench::{par_map, print_table, Args};
use triad_core::TriadConfig;
use ucrgen::archive::{generate_archive, ArchiveConfig};
use ucrgen::UcrDataset;

fn accuracy(archive: &[UcrDataset], cfg: &TriadConfig) -> f64 {
    let hits = par_map(archive, |ds| {
        bench::run_triad(ds, cfg)
            .map(|o| o.tri_window_hit)
            .unwrap_or(false)
    });
    hits.iter().filter(|&&h| h).count() as f64 / archive.len() as f64
}

fn main() {
    let args = Args::parse();
    let n: usize = args.get("datasets", 8);
    let epochs: usize = args.get("epochs", 4);
    // Default to the hard archive: at default difficulty window-level
    // accuracy saturates at 1.0 and the sweeps are flat (--hard 0 to revert).
    let hard: usize = args.get("hard", 1);
    let base_cfg = if hard != 0 {
        ArchiveConfig::hard()
    } else {
        ArchiveConfig::default()
    };
    let archive = generate_archive(
        7,
        &ArchiveConfig {
            count: n,
            ..base_cfg
        },
    );
    let base = TriadConfig {
        epochs,
        merlin_step: 4,
        ..Default::default()
    };

    let variants: Vec<(&str, TriadConfig)> = vec![
        ("TriAD (full)", base.clone()),
        (
            "w/o temporal",
            TriadConfig {
                use_temporal: false,
                ..base.clone()
            },
        ),
        (
            "w/o frequency",
            TriadConfig {
                use_frequency: false,
                ..base.clone()
            },
        ),
        (
            "w/o residual",
            TriadConfig {
                use_residual: false,
                ..base.clone()
            },
        ),
        (
            "w/o intra loss",
            TriadConfig {
                use_intra: false,
                ..base.clone()
            },
        ),
        (
            "w/o inter loss",
            TriadConfig {
                use_inter: false,
                ..base.clone()
            },
        ),
    ];

    let mut rows = Vec::new();
    for (name, cfg) in &variants {
        let acc = accuracy(&archive, cfg);
        eprintln!("{name}: {acc:.3}");
        rows.push(vec![name.to_string(), format!("{acc:.3}")]);
    }
    print_table(
        "Fig. 9 — ablation study (tri-window detection accuracy)",
        &["Variant", "Accuracy"],
        &rows,
    );
}
