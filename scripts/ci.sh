#!/usr/bin/env bash
# Tier-1 gate: formatting, release build, full test suite.
# Run from anywhere; it cds to the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo build --release"
cargo build --workspace --release

echo "== cargo test"
cargo test --workspace -q

echo "CI green."
