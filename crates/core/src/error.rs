//! Typed errors for the library-path fallible operations.
//!
//! `persist` and `detect` used to surface failures as stringly-typed
//! `io::Error`s (or panics, for `detect` on degenerate input). Callers that
//! embed the pipeline — the serve worker threads above all — need to tell
//! "the file is corrupt" from "the disk failed" from "the request payload is
//! nonsense" without parsing message text, and must never abort a worker on
//! a bad request. These enums are that contract.

use std::fmt;
use std::io;

/// Failure while saving or loading a model file.
#[derive(Debug)]
pub enum PersistError {
    /// The underlying reader/writer failed (disk, permissions, …).
    Io(io::Error),
    /// The stream ended mid-field; `what` names the field being read.
    Truncated { what: String, source: io::Error },
    /// Structurally invalid or corrupt content: bad magic, malformed
    /// header, failed validation, checksum mismatch.
    Format(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "model file I/O error: {e}"),
            PersistError::Truncated { what, source } => {
                write!(f, "truncated model file: reading {what} ({source})")
            }
            PersistError::Format(msg) => write!(f, "invalid model file: {msg}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) | PersistError::Truncated { source: e, .. } => Some(e),
            PersistError::Format(_) => None,
        }
    }
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        // `neuro::serialize` reports structural problems as InvalidData;
        // keep that distinction rather than flattening to Io.
        if e.kind() == io::ErrorKind::InvalidData {
            PersistError::Format(e.to_string())
        } else {
            PersistError::Io(e)
        }
    }
}

/// Failure while running detection on a test split.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DetectError {
    /// The test split is empty — there is nothing to rank or vote on.
    EmptyTest,
    /// A non-finite sample (NaN/Inf) at this index of the test split; it
    /// would silently poison similarity scores and the discord search.
    NonFiniteTest { index: usize },
    /// A non-finite sample at this index of the training split.
    NonFiniteTrain { index: usize },
}

impl fmt::Display for DetectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DetectError::EmptyTest => write!(f, "detect: empty test split"),
            DetectError::NonFiniteTest { index } => {
                write!(f, "detect: non-finite value in test split at index {index}")
            }
            DetectError::NonFiniteTrain { index } => {
                write!(
                    f,
                    "detect: non-finite value in training split at index {index}"
                )
            }
        }
    }
}

impl std::error::Error for DetectError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn persist_error_display_names_the_field() {
        let e = PersistError::Truncated {
            what: "header".into(),
            source: io::Error::new(io::ErrorKind::UnexpectedEof, "eof"),
        };
        assert!(e.to_string().contains("header"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn invalid_data_io_errors_become_format() {
        let e: PersistError = io::Error::new(io::ErrorKind::InvalidData, "bad block").into();
        assert!(matches!(e, PersistError::Format(_)));
        let e: PersistError = io::Error::new(io::ErrorKind::PermissionDenied, "nope").into();
        assert!(matches!(e, PersistError::Io(_)));
    }

    #[test]
    fn detect_error_display_carries_the_index() {
        assert!(DetectError::NonFiniteTest { index: 7 }
            .to_string()
            .contains("index 7"));
    }
}
