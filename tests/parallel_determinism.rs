//! The determinism matrix for the parallel runtime.
//!
//! The contract (DESIGN.md "parallel runtime"): worker threads are a pure
//! performance knob — train → persist → detect must be **bit-identical** at
//! every thread count, for every anomaly kind the synthetic archive
//! generates. This is what lets `--threads` be tuned freely on servers and
//! lets persisted models move between machines with different core counts.
//!
//! For each archive anomaly kind, the matrix fits and detects at 1/2/4/8
//! threads and requires, against the serial (1-thread) reference:
//!
//! * identical persisted TRIAD2 model bytes (the strongest train-side
//!   probe: every weight bit, the config header, the training report);
//! * identical `TriadDetection` (votes, prediction, candidates, discords —
//!   `PartialEq` over every field);
//! * identical results again after a persist → load round-trip, since a
//!   loaded model re-runs detection through the same parallel paths.
//!
//! A second matrix repeats one kind with `grad_shards = 2`: sharded
//! gradient accumulation is a *config* switch (it changes the contrastive
//! objective), so its results legitimately differ from `grad_shards = 1` —
//! but across thread counts they must still be bit-identical.

mod common;

use common::{dataset_of, quick_cfg, KINDS};
use triad_core::{persist, TriAd, TriadConfig, TriadDetection};

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Fit + persist + detect at one thread count.
fn run_at(cfg: &TriadConfig, train: &[f64], test: &[f64]) -> (Vec<u8>, TriadDetection) {
    let fitted = TriAd::new(cfg.clone()).fit(train).expect("fit");
    let mut bytes = Vec::new();
    persist::save(&mut bytes, &fitted).expect("persist");
    assert!(bytes.starts_with(b"TRIAD2\n"), "not a TRIAD2 payload");
    (bytes, fitted.detect(test))
}

fn assert_matrix(label: &str, cfg: TriadConfig, train: &[f64], test: &[f64]) {
    let mut reference: Option<(Vec<u8>, TriadDetection)> = None;
    for t in THREADS {
        let mut cfg = cfg.clone();
        cfg.threads = t;
        let (bytes, det) = run_at(&cfg, train, test);
        match &reference {
            None => reference = Some((bytes, det)),
            Some((ref_bytes, ref_det)) => {
                assert_eq!(
                    &bytes, ref_bytes,
                    "{label}: persisted model bytes differ at {t} threads"
                );
                assert_eq!(&det, ref_det, "{label}: detection differs at {t} threads");
            }
        }
    }
    // A loaded model must reproduce the reference through the same parallel
    // paths (threads is not persisted; retune it on the loaded instance).
    let (ref_bytes, ref_det) = reference.expect("at least one thread count ran");
    let mut loaded = persist::load(&ref_bytes[..]).expect("load");
    loaded.set_threads(*THREADS.last().expect("non-empty matrix"));
    assert_eq!(
        loaded.detect(test),
        ref_det,
        "{label}: loaded-model detection differs from the fitted reference"
    );
}

#[test]
fn train_detect_is_bit_identical_across_thread_counts_for_every_kind() {
    for (i, kind) in KINDS.into_iter().enumerate() {
        let ds = dataset_of(kind);
        assert_matrix(
            &format!("{kind:?}"),
            quick_cfg(i as u64),
            ds.train(),
            ds.test(),
        );
    }
}

#[test]
fn sharded_gradient_training_is_bit_identical_across_thread_counts() {
    let ds = common::easy_dataset();
    let mut cfg = quick_cfg(3);
    cfg.grad_shards = 2;
    assert_matrix("LevelShift/grad_shards=2", cfg, ds.train(), ds.test());
}
