//! Save / load a trained TriAD model.
//!
//! Per-dataset training is cheap but not free; a monitoring deployment wants
//! to train once and re-run detection on fresh test windows. The format is
//! a small header (config fields the pipeline needs at inference, training
//! metadata, the training series for the window-selection stage) followed by
//! the `neuro` parameter block, with a whole-file checksum trailer.
//!
//! ```text
//! magic   b"TRIAD2\n"
//! u32     header length
//! header  UTF-8 "key=value" lines (config + metadata)
//! u64     training-series length, then f64×len little-endian samples
//! block   neuro::serialize parameter file (all encoder + head params)
//! u32     CRC-32 (IEEE) of every preceding byte, little-endian
//! ```
//!
//! `load` is hardened against hostile or damaged input: every length field
//! is bounded, header values are validated before they reach code that
//! asserts on them (window/stride/period), truncation surfaces as a typed
//! [`PersistError`] rather than a panic, and the checksum catches bit-level
//! corruption anywhere in the file.

use crate::config::TriadConfig;
use crate::error::PersistError;
use crate::features::FeatureExtractor;
use crate::pipeline::FittedTriad;
use crate::train::TrainReport;
use neuro::serialize::{load_params, write_params};
use std::io::{self, Read, Write};
use std::path::Path;
use tsops::window::Segmenter;

const MAGIC: &[u8; 7] = b"TRIAD2\n";

/// Longest accepted header, bytes.
const MAX_HEADER: usize = 1 << 20;
/// Longest accepted training series (2^26 samples = 512 MiB of f64s).
const MAX_TRAIN: usize = 1 << 26;

// ---------------------------------------------------------------- checksum

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const CRC_TABLE: [u32; 256] = crc32_table();

fn crc32_update(mut crc: u32, bytes: &[u8]) -> u32 {
    for &b in bytes {
        crc = CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc
}

/// One-shot CRC-32 (IEEE, the same polynomial as the TRIAD2/TRIADS1 file
/// trailers). Public so sibling record formats — the evalbed JSONL result
/// rows — checksum with the identical algorithm instead of re-deriving it.
pub fn crc32(bytes: &[u8]) -> u32 {
    !crc32_update(0xFFFF_FFFF, bytes)
}

/// Writer shim that checksums everything passing through it; [`finish`]
/// appends the trailer.
///
/// Public so sibling persisted formats (the stream checkpoints of
/// `triad-stream`) share the exact CRC-32 framing instead of re-deriving it.
///
/// [`finish`]: CrcWriter::finish
pub struct CrcWriter<W: Write> {
    inner: W,
    crc: u32,
}

impl<W: Write> CrcWriter<W> {
    pub fn new(inner: W) -> Self {
        CrcWriter {
            inner,
            crc: 0xFFFF_FFFF,
        }
    }

    pub fn finish(mut self) -> io::Result<()> {
        let digest = !self.crc;
        self.inner.write_all(&digest.to_le_bytes())?;
        self.inner.flush()
    }
}

impl<W: Write> Write for CrcWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.crc = crc32_update(self.crc, &buf[..n]);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Reader shim mirroring [`CrcWriter`]; [`verify_trailer`] checks the stored
/// digest after the payload has been consumed.
///
/// [`verify_trailer`]: CrcReader::verify_trailer
pub struct CrcReader<R: Read> {
    inner: R,
    crc: u32,
}

impl<R: Read> CrcReader<R> {
    pub fn new(inner: R) -> Self {
        CrcReader {
            inner,
            crc: 0xFFFF_FFFF,
        }
    }

    pub fn verify_trailer(mut self) -> Result<(), PersistError> {
        let computed = !self.crc;
        let mut t = [0u8; 4];
        self.inner
            .read_exact(&mut t)
            .map_err(|e| PersistError::Truncated {
                what: "checksum trailer".into(),
                source: e,
            })?;
        let stored = u32::from_le_bytes(t);
        if stored != computed {
            return Err(invalid(format!(
                "model file corrupted: checksum mismatch (stored {stored:08x}, computed {computed:08x})"
            )));
        }
        Ok(())
    }
}

impl<R: Read> Read for CrcReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.crc = crc32_update(self.crc, &buf[..n]);
        Ok(n)
    }
}

// ------------------------------------------------------------------ header

fn invalid(msg: impl Into<String>) -> PersistError {
    PersistError::Format(msg.into())
}

/// `read_exact` that reports *which* field was being read when the stream
/// ended, as a typed [`PersistError::Truncated`]. Shared with the stream
/// checkpoint reader.
pub fn read_exact_ctx<R: Read>(r: &mut R, buf: &mut [u8], what: &str) -> Result<(), PersistError> {
    r.read_exact(buf).map_err(|e| PersistError::Truncated {
        what: what.into(),
        source: e,
    })
}

fn header_string(fitted: &FittedTriad) -> String {
    let cfg = fitted.config();
    let rep = fitted.report();
    let fx = fitted.extractor();
    let domains: Vec<&str> = cfg.domains().iter().map(|d| d.name()).collect();
    [
        format!("alpha={}", cfg.alpha),
        format!("depth={}", cfg.depth),
        format!("hidden={}", cfg.hidden),
        format!("kernel={}", cfg.kernel),
        format!("temperature={}", cfg.temperature),
        format!("top_z={}", cfg.top_z),
        format!("weighted_voting={}", cfg.weighted_voting),
        format!("triad_vote_weight={}", cfg.triad_vote_weight),
        format!("merlin_pad_windows={}", cfg.merlin_pad_windows),
        format!("merlin_min_len={}", cfg.merlin_min_len),
        format!("merlin_max_len={}", cfg.merlin_max_len),
        format!("merlin_step={}", cfg.merlin_step),
        format!("seed={}", cfg.seed),
        format!("domains={}", domains.join(",")),
        format!("period={}", rep.period),
        format!("window={}", rep.window),
        format!("stride={}", rep.stride),
        format!("residual_scale={}", fx.residual_scale),
    ]
    .join("\n")
}

fn parse_header(text: &str) -> Result<std::collections::HashMap<String, String>, PersistError> {
    let mut map = std::collections::HashMap::new();
    for line in text.lines() {
        let (k, v) = line
            .split_once('=')
            .ok_or_else(|| invalid(format!("bad header line: {line}")))?;
        map.insert(k.to_string(), v.to_string());
    }
    Ok(map)
}

fn get<T: std::str::FromStr>(
    map: &std::collections::HashMap<String, String>,
    key: &str,
) -> Result<T, PersistError> {
    map.get(key)
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| invalid(format!("missing/bad header field {key}")))
}

// --------------------------------------------------------------- save/load

/// Serialize a fitted model.
pub fn save<W: Write>(w: W, fitted: &FittedTriad) -> Result<(), PersistError> {
    let mut w = CrcWriter::new(w);
    w.write_all(MAGIC)?;
    let header = header_string(fitted);
    w.write_all(&(header.len() as u32).to_le_bytes())?;
    w.write_all(header.as_bytes())?;
    let train = fitted.train_series();
    w.write_all(&(train.len() as u64).to_le_bytes())?;
    for &v in train {
        w.write_all(&v.to_le_bytes())?;
    }
    write_params(&mut w, &fitted.model().params())?;
    w.finish()?;
    Ok(())
}

/// Save to a file path.
pub fn save_file(path: &Path, fitted: &FittedTriad) -> Result<(), PersistError> {
    save(
        std::io::BufWriter::new(std::fs::File::create(path).map_err(PersistError::Io)?),
        fitted,
    )
}

/// Deserialize a fitted model, validating every field before it reaches
/// code that would panic on nonsense (see module docs).
pub fn load<R: Read>(r: R) -> Result<FittedTriad, PersistError> {
    let mut r = CrcReader::new(r);
    let mut magic = [0u8; 7];
    read_exact_ctx(&mut r, &mut magic, "magic")?;
    if &magic != MAGIC {
        return Err(invalid("not a TRIAD2 model file"));
    }
    let mut len4 = [0u8; 4];
    read_exact_ctx(&mut r, &mut len4, "header length")?;
    let hlen = u32::from_le_bytes(len4) as usize;
    if hlen > MAX_HEADER {
        return Err(invalid(format!("oversized header ({hlen} bytes)")));
    }
    let mut hbuf = vec![0u8; hlen];
    read_exact_ctx(&mut r, &mut hbuf, "header")?;
    let header = String::from_utf8(hbuf).map_err(|_| invalid("non-UTF8 header"))?;
    let map = parse_header(&header)?;

    let mut cfg = TriadConfig {
        alpha: get(&map, "alpha")?,
        depth: get(&map, "depth")?,
        hidden: get(&map, "hidden")?,
        kernel: get(&map, "kernel")?,
        temperature: get(&map, "temperature")?,
        top_z: get(&map, "top_z")?,
        weighted_voting: get(&map, "weighted_voting")?,
        triad_vote_weight: get(&map, "triad_vote_weight")?,
        merlin_pad_windows: get(&map, "merlin_pad_windows")?,
        merlin_min_len: get(&map, "merlin_min_len")?,
        merlin_max_len: get(&map, "merlin_max_len")?,
        merlin_step: get(&map, "merlin_step")?,
        seed: get(&map, "seed")?,
        ..TriadConfig::default()
    };
    let domain_names: String = get(&map, "domains")?;
    cfg.use_temporal = domain_names.split(',').any(|d| d == "temporal");
    cfg.use_frequency = domain_names.split(',').any(|d| d == "frequency");
    cfg.use_residual = domain_names.split(',').any(|d| d == "residual");
    // The same validation `fit` runs: a tampered header cannot smuggle
    // values the pipeline's own invariants reject.
    cfg.validate()
        .map_err(|e| invalid(format!("invalid config in header: {e}")))?;

    let period: usize = get(&map, "period")?;
    let window: usize = get(&map, "window")?;
    let stride: usize = get(&map, "stride")?;
    let residual_scale: f64 = get(&map, "residual_scale")?;
    // These reach `Segmenter::new` / `FeatureExtractor`, which assert;
    // reject bad values here with an error instead.
    if period < 2 {
        return Err(invalid(format!("invalid header: period {period} < 2")));
    }
    if window == 0 || stride == 0 {
        return Err(invalid(format!(
            "invalid header: window {window} / stride {stride} must be ≥ 1"
        )));
    }
    if !residual_scale.is_finite() {
        return Err(invalid("invalid header: non-finite residual_scale"));
    }

    let mut len8 = [0u8; 8];
    read_exact_ctx(&mut r, &mut len8, "train length")?;
    let n_train = u64::from_le_bytes(len8);
    if n_train > MAX_TRAIN as u64 {
        return Err(invalid(format!("implausible train length {n_train}")));
    }
    let n_train = n_train as usize;
    if n_train < window {
        return Err(invalid(format!(
            "train series ({n_train} points) shorter than window ({window})"
        )));
    }
    let mut train = Vec::with_capacity(n_train);
    let mut b8 = [0u8; 8];
    for i in 0..n_train {
        read_exact_ctx(&mut r, &mut b8, &format!("train sample {i}/{n_train}"))?;
        train.push(f64::from_le_bytes(b8));
    }

    // Rebuild the model skeleton exactly as `train::fit` does (same seed,
    // same construction order), then overwrite its parameters.
    let model = crate::train::skeleton(&cfg);
    load_params(&mut r, &model.params())?;
    r.verify_trailer()?;

    let extractor = FeatureExtractor {
        period,
        residual_scale,
    };
    let segmenter = Segmenter::new(window, stride);
    let report = TrainReport {
        epoch_losses: Vec::new(),
        val_losses: Vec::new(),
        period,
        window,
        stride,
        n_windows: 0,
    };
    Ok(FittedTriad::from_parts(
        cfg, model, extractor, segmenter, report, train,
    ))
}

/// Load from a file path.
pub fn load_file(path: &Path) -> Result<FittedTriad, PersistError> {
    load(std::io::BufReader::new(
        std::fs::File::open(path).map_err(PersistError::Io)?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::TriAd;
    use proptest::prelude::*;
    use std::f64::consts::PI;

    fn series() -> (Vec<f64>, Vec<f64>) {
        let mut full: Vec<f64> = (0..1000)
            .map(|i| (2.0 * PI * i as f64 / 40.0).sin() + 0.25 * (4.0 * PI * i as f64 / 40.0).sin())
            .collect();
        for i in 800..860 {
            full[i] = (8.0 * PI * i as f64 / 40.0).sin();
        }
        (full[..600].to_vec(), full[600..].to_vec())
    }

    fn quick_cfg() -> TriadConfig {
        TriadConfig {
            epochs: 3,
            depth: 2,
            hidden: 8,
            batch: 4,
            merlin_step: 4,
            ..Default::default()
        }
    }

    /// `load(...).unwrap_err()` without requiring `FittedTriad: Debug`.
    fn load_err(bytes: &[u8], what: &str) -> PersistError {
        match load(bytes) {
            Ok(_) => panic!("expected load to fail: {what}"),
            Err(e) => e,
        }
    }

    fn saved_bytes() -> Vec<u8> {
        let (train, _) = series();
        let fitted = TriAd::new(quick_cfg()).fit(&train).expect("fit");
        let mut buf = Vec::new();
        save(&mut buf, &fitted).expect("save");
        buf
    }

    #[test]
    fn save_load_round_trip_reproduces_detection() {
        let (train, test) = series();
        let fitted = TriAd::new(quick_cfg()).fit(&train).expect("fit");
        let before = fitted.detect(&test);

        let mut buf = Vec::new();
        save(&mut buf, &fitted).expect("save");
        let restored = load(buf.as_slice()).expect("load");

        assert_eq!(restored.period(), fitted.period());
        assert_eq!(restored.window_len(), fitted.window_len());
        let after = restored.detect(&test);
        assert_eq!(before.prediction, after.prediction);
        assert_eq!(before.votes, after.votes);
        assert_eq!(before.selected_window, after.selected_window);
        assert_eq!(before.discords, after.discords);
    }

    #[test]
    fn ablated_models_round_trip() {
        let (train, test) = series();
        let mut cfg = quick_cfg();
        cfg.use_residual = false;
        let fitted = TriAd::new(cfg).fit(&train).expect("fit");
        let mut buf = Vec::new();
        save(&mut buf, &fitted).unwrap();
        let restored = load(buf.as_slice()).unwrap();
        assert_eq!(restored.model().encoders.len(), 2);
        assert_eq!(
            fitted.detect(&test).prediction,
            restored.detect(&test).prediction
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(load(&b"not a model"[..]).is_err());
        let mut bad = MAGIC.to_vec();
        bad.extend_from_slice(&(5u32).to_le_bytes());
        bad.extend_from_slice(b"x=y\nz"); // malformed header line
        assert!(load(bad.as_slice()).is_err());
    }

    #[test]
    fn rejects_every_truncation() {
        let buf = saved_bytes();
        // Every proper prefix must fail with an error, never panic: the
        // checksum trailer guarantees even "clean" cuts at field boundaries
        // are caught.
        let step = (buf.len() / 23).max(1);
        let mut cuts: Vec<usize> = (0..buf.len()).step_by(step).collect();
        cuts.extend([buf.len() - 1, buf.len() - 4, buf.len() - 5]);
        for cut in cuts {
            let err = load_err(&buf[..cut], &format!("prefix of {cut} bytes"));
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn rejects_every_bit_flip() {
        let buf = saved_bytes();
        let step = (buf.len() / 29).max(1);
        let mut spots: Vec<usize> = (0..buf.len()).step_by(step).collect();
        spots.extend([0, 3, 7, 8, 12, buf.len() - 4, buf.len() - 1]);
        for pos in spots {
            for bit in [0, 4, 7] {
                let mut evil = buf.clone();
                evil[pos] ^= 1 << bit;
                assert!(
                    load(evil.as_slice()).is_err(),
                    "flip at byte {pos} bit {bit} loaded"
                );
            }
        }
    }

    #[test]
    fn truncated_file_reports_descriptive_error() {
        let buf = saved_bytes();
        let err = load_err(&buf[..buf.len() - 2], "2-byte truncation");
        let msg = err.to_string();
        assert!(
            msg.contains("truncated") || msg.contains("checksum"),
            "unhelpful error: {msg}"
        );
    }

    #[test]
    fn rejects_header_values_that_would_panic_downstream() {
        // Forge a structurally valid file with window=0 by rewriting the
        // header and re-sealing the checksum, so only validation can save us.
        let buf = saved_bytes();
        let hlen = u32::from_le_bytes(buf[7..11].try_into().unwrap()) as usize;
        let header = std::str::from_utf8(&buf[11..11 + hlen]).unwrap();
        assert!(header.lines().any(|l| l.starts_with("window=")));
        let patched: String = header
            .lines()
            .map(|l| {
                if l.starts_with("window=") {
                    "window=0"
                } else {
                    l
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        let mut evil = Vec::new();
        evil.extend_from_slice(MAGIC);
        evil.extend_from_slice(&(patched.len() as u32).to_le_bytes());
        evil.extend_from_slice(patched.as_bytes());
        evil.extend_from_slice(&buf[11 + hlen..buf.len() - 4]);
        let crc = !crc32_update(0xFFFF_FFFF, &evil);
        evil.extend_from_slice(&crc.to_le_bytes());
        let err = load_err(&evil, "window=0 header");
        assert!(err.to_string().contains("window"), "{err}");
    }

    #[test]
    fn file_round_trip() {
        let (train, _) = series();
        let fitted = TriAd::new(quick_cfg()).fit(&train).expect("fit");
        let path = std::env::temp_dir().join("triad_persist_test.bin");
        save_file(&path, &fitted).unwrap();
        let restored = load_file(&path).unwrap();
        assert_eq!(restored.window_len(), fitted.window_len());
        std::fs::remove_file(&path).ok();
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        // Params + config survive save→load exactly: re-serializing the
        // loaded model reproduces the original byte stream.
        #[test]
        fn save_load_save_is_byte_identical(
            hidden in 4usize..=8,
            depth in 1usize..=2,
            seed in any::<u64>(),
            alpha in 0.05f64..0.95,
            use_residual in any::<bool>(),
        ) {
            let train: Vec<f64> = (0..300)
                .map(|i| (2.0 * PI * i as f64 / 30.0).sin())
                .collect();
            let cfg = TriadConfig {
                epochs: 1,
                batch: 4,
                merlin_step: 8,
                hidden,
                depth,
                seed,
                alpha,
                use_residual,
                ..Default::default()
            };
            let fitted = match TriAd::new(cfg).fit(&train) {
                Ok(f) => f,
                Err(e) => return Err(TestCaseError::fail(format!("fit failed: {e}"))),
            };
            let mut first = Vec::new();
            save(&mut first, &fitted).expect("save");
            let restored = load(first.as_slice()).expect("load");
            prop_assert_eq!(restored.config().hidden, hidden);
            prop_assert_eq!(restored.config().depth, depth);
            prop_assert_eq!(restored.config().seed, seed);
            prop_assert_eq!(restored.config().use_residual, use_residual);
            let mut second = Vec::new();
            save(&mut second, &restored).expect("re-save");
            prop_assert_eq!(&first, &second);
        }
    }
}
