//! Whole-window computer-vision-style augmentations.
//!
//! These are the transforms the paper's Fig. 1 criticises: applied to a whole
//! time-series window they produce data that *looks anomalous*, which is why
//! TriAD replaces them with local segment alterations. They are kept here
//! (a) to regenerate Fig. 1 and (b) because the TS2Vec-lite baseline's
//! contrastive views use cropping.

use crate::rng::gaussian;
use rand::seq::SliceRandom;
use rand::Rng;

/// Gaussian noise over the whole window.
pub fn jitter_all<R: Rng>(rng: &mut R, x: &[f64], sigma: f64) -> Vec<f64> {
    x.iter().map(|v| v + gaussian(rng) * sigma).collect()
}

/// Multiply the whole window by a single random scale in `[lo, hi]`.
pub fn scale_all<R: Rng>(rng: &mut R, x: &[f64], lo: f64, hi: f64) -> Vec<f64> {
    let k = lo + (hi - lo) * rng.random::<f64>();
    x.iter().map(|v| v * k).collect()
}

/// Split the window into `n_chunks` contiguous chunks and shuffle their order.
pub fn shuffle_chunks<R: Rng>(rng: &mut R, x: &[f64], n_chunks: usize) -> Vec<f64> {
    let n = x.len();
    if n == 0 || n_chunks <= 1 {
        return x.to_vec();
    }
    let n_chunks = n_chunks.min(n);
    let base = n / n_chunks;
    let mut chunks: Vec<&[f64]> = Vec::with_capacity(n_chunks);
    let mut pos = 0;
    for i in 0..n_chunks {
        let end = if i == n_chunks - 1 { n } else { pos + base };
        chunks.push(&x[pos..end]);
        pos = end;
    }
    chunks.shuffle(rng);
    let mut out = Vec::with_capacity(n);
    for c in chunks {
        out.extend_from_slice(c);
    }
    out
}

/// Random contiguous crop of length `crop_len`, linearly resampled back to the
/// original length (the usual "crop + resize" view).
pub fn crop_resize<R: Rng>(rng: &mut R, x: &[f64], crop_len: usize) -> Vec<f64> {
    let n = x.len();
    if n == 0 || crop_len >= n || crop_len < 2 {
        return x.to_vec();
    }
    let start = rng.random_range(0..=(n - crop_len));
    let crop = &x[start..start + crop_len];
    resample_linear(crop, n)
}

/// Linear interpolation resampling to `target_len` points.
pub fn resample_linear(x: &[f64], target_len: usize) -> Vec<f64> {
    let n = x.len();
    if n == 0 || target_len == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![x[0]; target_len];
    }
    let mut out = Vec::with_capacity(target_len);
    let scale = (n - 1) as f64 / (target_len - 1).max(1) as f64;
    for i in 0..target_len {
        let pos = i as f64 * scale;
        let lo = pos.floor() as usize;
        let hi = (lo + 1).min(n - 1);
        let frac = pos - lo as f64;
        out.push(x[lo] * (1.0 - frac) + x[hi] * frac);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn wave(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * i as f64 / 16.0).sin())
            .collect()
    }

    #[test]
    fn jitter_changes_every_point_in_expectation() {
        let mut rng = StdRng::seed_from_u64(0);
        let x = wave(64);
        let y = jitter_all(&mut rng, &x, 0.3);
        let changed = x.iter().zip(&y).filter(|(a, b)| a != b).count();
        assert!(changed > 60);
    }

    #[test]
    fn scale_preserves_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let x = wave(64);
        let y = scale_all(&mut rng, &x, 2.0, 2.0);
        for (a, b) in x.iter().zip(&y) {
            assert!((b - a * 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn shuffle_preserves_multiset() {
        let mut rng = StdRng::seed_from_u64(2);
        let x = wave(60);
        let y = shuffle_chunks(&mut rng, &x, 6);
        assert_eq!(y.len(), x.len());
        let mut xs = x.clone();
        let mut ys = y.clone();
        xs.sort_by(f64::total_cmp);
        ys.sort_by(f64::total_cmp);
        assert_eq!(xs, ys);
    }

    #[test]
    fn shuffle_one_chunk_is_identity() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = wave(20);
        assert_eq!(shuffle_chunks(&mut rng, &x, 1), x);
    }

    #[test]
    fn crop_resize_keeps_length() {
        let mut rng = StdRng::seed_from_u64(4);
        let x = wave(100);
        let y = crop_resize(&mut rng, &x, 40);
        assert_eq!(y.len(), 100);
    }

    #[test]
    fn resample_endpoints_are_exact() {
        let x = vec![1.0, 3.0, 5.0, 7.0];
        let y = resample_linear(&x, 7);
        assert_eq!(y.len(), 7);
        assert!((y[0] - 1.0).abs() < 1e-12);
        assert!((y[6] - 7.0).abs() < 1e-12);
        // Midpoint interpolates.
        assert!((y[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn resample_degenerate() {
        assert!(resample_linear(&[], 5).is_empty());
        assert_eq!(resample_linear(&[2.0], 3), vec![2.0, 2.0, 2.0]);
    }
}
