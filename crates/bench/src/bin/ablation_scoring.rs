//! Scoring-function ablation — the paper's Sec. III-D3 future-work question:
//! does normalising/weighting the votes (window vote weighted, discord votes
//! normalised by sweep size) improve over the plain Eq. 8 voting?
//!
//! Flags: `--datasets N` (default 8), `--epochs N`, `--weight W` (window
//! vote weight under weighted voting, default 1.0).

use bench::{f3, par_map, print_table, Args, MetricRow};
use triad_core::TriadConfig;
use ucrgen::archive::{generate_archive, ArchiveConfig};
use ucrgen::UcrDataset;

fn run(archive: &[UcrDataset], cfg: &TriadConfig) -> (MetricRow, f64) {
    let outcomes = par_map(archive, |ds| bench::run_triad(ds, cfg).ok());
    let ok: Vec<_> = outcomes.into_iter().flatten().collect();
    let m = MetricRow::mean(&ok.iter().map(|o| o.metrics).collect::<Vec<_>>());
    let fallback = ok.iter().filter(|o| o.detection.used_fallback).count() as f64
        / archive.len().max(1) as f64;
    (m, fallback)
}

fn main() {
    let args = Args::parse();
    let n: usize = args.get("datasets", 8);
    let epochs: usize = args.get("epochs", 4);
    let weight: f64 = args.get("weight", 1.0);
    let archive = generate_archive(
        7,
        &ArchiveConfig {
            count: n,
            ..Default::default()
        },
    );

    let base = TriadConfig {
        epochs,
        merlin_step: 2,
        ..Default::default()
    };
    let variants: Vec<(&str, TriadConfig)> = vec![
        ("Eq. 8 (plain votes)", base.clone()),
        (
            "weighted (normalised discords)",
            TriadConfig {
                weighted_voting: true,
                triad_vote_weight: weight,
                ..base.clone()
            },
        ),
        (
            "weighted, window x2",
            TriadConfig {
                weighted_voting: true,
                triad_vote_weight: 2.0,
                ..base.clone()
            },
        ),
    ];

    let mut rows = Vec::new();
    for (name, cfg) in &variants {
        let (m, fb) = run(&archive, cfg);
        eprintln!("{name} done");
        rows.push(vec![
            name.to_string(),
            f3(m.pw.f1),
            f3(m.pak.f1_auc),
            f3(m.affiliation.f1),
            f3(fb),
        ]);
    }
    print_table(
        "Scoring ablation — Eq. 8 vs the future-work weighted voting",
        &[
            "Scoring",
            "F1(PW)",
            "PA%K F1-AUC",
            "Aff F1",
            "fallback rate",
        ],
        &rows,
    );
}
