//! Discord-algorithm scaling: brute-force matrix profile vs DRAG vs MERLIN
//! vs MERLIN++ — the runtime ladder behind Table IV's timing claim.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use discord::merlin::MerlinConfig;
use std::hint::black_box;

fn anomalous(n: usize) -> Vec<f64> {
    let mut x: Vec<f64> = (0..n)
        .map(|i| (2.0 * std::f64::consts::PI * i as f64 / 50.0).sin())
        .collect();
    let at = n / 2;
    for i in at..(at + 30).min(n) {
        x[i] += ((i - at) as f64 * 0.7).sin() * 1.5;
    }
    x
}

fn bench_single_length(c: &mut Criterion) {
    let mut g = c.benchmark_group("single_length_w50");
    for &n in &[1000usize, 3000] {
        let x = anomalous(n);
        g.bench_with_input(BenchmarkId::new("matrix_profile", n), &x, |b, x| {
            b.iter(|| discord::matrix_profile::matrix_profile(black_box(x), 50))
        });
        g.bench_with_input(BenchmarkId::new("drag_good_r", n), &x, |b, x| {
            b.iter(|| discord::drag::drag(black_box(x), 50, 3.0))
        });
    }
    g.finish();
}

fn bench_sweeps(c: &mut Criterion) {
    let mut g = c.benchmark_group("length_sweep_20_60_step10");
    g.sample_size(10);
    for &n in &[1000usize, 3000] {
        let x = anomalous(n);
        let cfg = MerlinConfig::new(20, 60).with_step(10);
        g.bench_with_input(BenchmarkId::new("merlin", n), &x, |b, x| {
            b.iter(|| discord::merlin::merlin(black_box(x), cfg))
        });
        g.bench_with_input(BenchmarkId::new("merlin_pp", n), &x, |b, x| {
            b.iter(|| discord::merlin_pp::merlin_pp(black_box(x), cfg))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(5)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_single_length, bench_sweeps
}
criterion_main!(benches);
