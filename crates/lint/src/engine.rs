//! Workspace walking, suppression filtering, stale-suppression detection,
//! output formatting and the fixture self-test.

use crate::context::FileContext;
use crate::rules::{self, Diagnostic};
use std::fs;
use std::path::{Path, PathBuf};

/// Directory names never descended into. `vendor` holds offline stand-ins
/// for external crates (not ours to lint, like any dependency), `fixtures`
/// holds seeded violations exercised only by `--fixture`, `bench_out` and
/// `evalbed_out` are run artifacts.
const SKIP_DIRS: &[&str] = &[
    "target",
    ".git",
    "vendor",
    "fixtures",
    "bench_out",
    "evalbed_out",
];

/// Generated or vendored trees that are never scanned — even when such a
/// path is passed explicitly as the root. (`fixtures` is deliberately not
/// here: passing a fixture directory explicitly is how `--fixture` works.)
const GENERATED_COMPONENTS: &[&str] = &["target", ".git", "vendor", "bench_out", "evalbed_out"];

#[derive(Debug, Clone, Default)]
pub struct Options {
    /// Also lint `vendor/` (off by default, like any linter and its deps).
    pub include_vendor: bool,
}

/// Everything the engine learned about one file, for the fixture checker.
pub struct FileReport {
    pub rel_path: String,
    /// Diagnostics that survived suppression.
    pub diagnostics: Vec<Diagnostic>,
    /// `//@ expect: rule` directives found in the file (fixtures only).
    pub expected: Vec<String>,
}

/// Lint every `.rs` file under `root`. Returns per-file reports sorted by
/// path; diagnostics within a file are sorted by line.
///
/// A root inside a generated/vendored tree (`vendor/`, `target/`,
/// `bench_out/`, `evalbed_out/`) produces no reports: those files are not
/// ours to lint even when named explicitly (`--include-vendor` restores
/// `vendor/`, matching the walker's behaviour).
pub fn run(root: &Path, opts: &Options) -> std::io::Result<Vec<FileReport>> {
    // Canonicalize so `./vendor/../vendor/x` style spellings cannot slip a
    // generated tree past the component check.
    let canon = root.canonicalize().unwrap_or_else(|_| root.to_path_buf());
    let in_generated = canon.components().any(|c| {
        let name = c.as_os_str().to_string_lossy();
        GENERATED_COMPONENTS.contains(&name.as_ref()) && !(opts.include_vendor && name == "vendor")
    });
    if in_generated {
        return Ok(Vec::new());
    }
    let mut files = Vec::new();
    walk(root, opts, &mut files)?;
    files.sort();
    let mut reports = Vec::new();
    for path in files {
        let src = fs::read(&path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        reports.push(lint_one(&rel, &src));
    }
    Ok(reports)
}

/// Lint one file held in memory. The effective path (and therefore the
/// crate classification) can be overridden by a `//@ path:` directive —
/// that is how fixture files pose as kernel/library/binary sources.
pub fn lint_one(rel_path: &str, src: &[u8]) -> FileReport {
    let (pretend, expected) = directives(src);
    let effective = pretend.as_deref().unwrap_or(rel_path);
    let cx = FileContext::new(effective, src);
    let mut raw = Vec::new();
    rules::run_all(&cx, &mut raw);
    let stale = stale_suppressions(&cx, &raw);
    let mut diagnostics: Vec<Diagnostic> = raw
        .into_iter()
        .filter(|d| !cx.is_suppressed(d.rule, d.line))
        .collect();
    // Stale findings join *after* the suppression filter: a suppression
    // cannot vouch for itself, so `stale-suppression` is unsuppressible.
    diagnostics.extend(stale);
    diagnostics.sort_by_key(|d| (d.line, d.rule));
    crate::baseline::assign_fingerprints(&mut diagnostics, src);
    FileReport {
        rel_path: rel_path.to_string(),
        diagnostics,
        expected,
    }
}

/// A reasoned `lint-allow` earns its keep by suppressing something: for
/// each known rule it names, some *raw* (pre-filter) diagnostic of that
/// rule must land in the lines it governs. Anything else is stale — the
/// code was fixed or the annotation drifted — and stale suppressions decay
/// into silent lies about the code, so they are errors.
///
/// Reasonless annotations and unknown rule names are `suppress-reason`'s
/// beat (they never suppress anything); `stale-suppression` itself is
/// excluded from the liveness check (it cannot fire at annotation time by
/// construction, so naming it would always be stale).
fn stale_suppressions(cx: &FileContext<'_>, raw: &[Diagnostic]) -> Vec<Diagnostic> {
    let known = rules::rule_ids();
    let mut out = Vec::new();
    for s in &cx.suppressions {
        if !s.has_reason {
            continue;
        }
        for r in &s.rules {
            if r == "stale-suppression" || !known.contains(&r.as_str()) {
                continue;
            }
            let live = raw
                .iter()
                .any(|d| d.rule == *r && d.line >= s.applies_to.0 && d.line <= s.applies_to.1);
            if !live {
                out.push(Diagnostic {
                    rule: "stale-suppression",
                    path: cx.rel_path.clone(),
                    line: s.line,
                    message: format!(
                        "lint-allow({r}) no longer suppresses anything here; remove it (or fix \
                         the annotation if the finding moved)"
                    ),
                    fingerprint: 0,
                });
            }
        }
    }
    out
}

fn walk(dir: &Path, opts: &Options, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            let skip =
                SKIP_DIRS.contains(&name.as_ref()) && !(opts.include_vendor && name == "vendor");
            if !skip {
                walk(&path, opts, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Parse `//@ path:` / `//@ expect:` directives from the head of a file.
fn directives(src: &[u8]) -> (Option<String>, Vec<String>) {
    let mut pretend = None;
    let mut expected = Vec::new();
    let text = String::from_utf8_lossy(src);
    for line in text.lines().take(16) {
        let line = line.trim();
        if let Some(p) = line.strip_prefix("//@ path:") {
            pretend = Some(p.trim().to_string());
        } else if let Some(e) = line.strip_prefix("//@ expect:") {
            for r in e.split(',') {
                let r = r.trim();
                if !r.is_empty() {
                    expected.push(r.to_string());
                }
            }
        }
    }
    (pretend, expected)
}

// ------------------------------------------------------------------ output

pub fn render_human(reports: &[FileReport]) -> String {
    let mut out = String::new();
    let mut n = 0usize;
    for r in reports {
        for d in &r.diagnostics {
            out.push_str(&format!(
                "{}:{}: [{}] {}\n",
                r.rel_path, d.line, d.rule, d.message
            ));
            n += 1;
        }
    }
    out.push_str(&format!(
        "triad-lint: {} diagnostic{} across {} file{}\n",
        n,
        if n == 1 { "" } else { "s" },
        reports.iter().filter(|r| !r.diagnostics.is_empty()).count(),
        if reports.iter().filter(|r| !r.diagnostics.is_empty()).count() == 1 {
            ""
        } else {
            "s"
        },
    ));
    out
}

pub fn render_json(reports: &[FileReport]) -> String {
    let mut out = String::from("[");
    let mut first = true;
    for r in reports {
        for d in &r.diagnostics {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n  {{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"message\":\"{}\",\"hash\":\"{:016x}\"}}",
                json_escape(d.rule),
                json_escape(&r.rel_path),
                d.line,
                json_escape(&d.message),
                d.fingerprint
            ));
        }
    }
    out.push_str(if first { "]\n" } else { "\n]\n" });
    out
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

// ----------------------------------------------------------- fixture mode

/// Outcome of the `--fixture` self-test.
pub struct FixtureOutcome {
    /// Human-readable report (always printed).
    pub report: String,
    /// True when every fixture matched its `//@ expect:` set exactly and
    /// every shipped rule fired at least once somewhere.
    pub passed: bool,
    /// Total diagnostics emitted on the fixture set.
    pub total_diagnostics: usize,
}

/// Run the engine over the seeded-violation fixtures and check that each
/// file produced exactly its expected rule set, and that the union covers
/// the whole catalog.
pub fn fixture_self_test(fixture_dir: &Path) -> std::io::Result<FixtureOutcome> {
    let reports = run(fixture_dir, &Options::default())?;
    let mut report = String::new();
    let mut passed = true;
    let mut fired: Vec<&'static str> = Vec::new();
    let mut total = 0usize;
    if reports.is_empty() {
        return Ok(FixtureOutcome {
            report: format!("no fixtures found under {}\n", fixture_dir.display()),
            passed: false,
            total_diagnostics: 0,
        });
    }
    for r in &reports {
        total += r.diagnostics.len();
        let mut got: Vec<&str> = r.diagnostics.iter().map(|d| d.rule).collect();
        got.sort_unstable();
        got.dedup();
        for d in &r.diagnostics {
            if !fired.contains(&d.rule) {
                fired.push(d.rule);
            }
        }
        let mut want: Vec<&str> = r.expected.iter().map(|s| s.as_str()).collect();
        want.sort_unstable();
        want.dedup();
        if got == want {
            report.push_str(&format!(
                "ok   {} ({} diagnostic{}: {})\n",
                r.rel_path,
                r.diagnostics.len(),
                if r.diagnostics.len() == 1 { "" } else { "s" },
                if got.is_empty() {
                    "none".to_string()
                } else {
                    got.join(", ")
                },
            ));
        } else {
            passed = false;
            report.push_str(&format!(
                "FAIL {}: expected rules [{}], got [{}]\n",
                r.rel_path,
                want.join(", "),
                got.join(", ")
            ));
            for d in &r.diagnostics {
                report.push_str(&format!(
                    "     {}:{}: [{}] {}\n",
                    r.rel_path, d.line, d.rule, d.message
                ));
            }
        }
    }
    for (id, _) in rules::RULES {
        if !fired.contains(id) {
            passed = false;
            report.push_str(&format!("FAIL rule `{}` never fired on any fixture\n", id));
        }
    }
    report.push_str(&format!(
        "fixture self-test: {} ({} diagnostics, {}/{} rules fired)\n",
        if passed { "PASS" } else { "FAIL" },
        total,
        fired.len(),
        rules::RULES.len()
    ));
    Ok(FixtureOutcome {
        report,
        passed,
        total_diagnostics: total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directives_parse() {
        let src =
            b"//@ path: crates/tsops/src/fx.rs\n//@ expect: lossy-cast, float-div-acc\nfn f() {}\n";
        let (p, e) = directives(src);
        assert_eq!(p.as_deref(), Some("crates/tsops/src/fx.rs"));
        assert_eq!(e, vec!["lossy-cast", "float-div-acc"]);
    }

    #[test]
    fn lint_one_filters_suppressed() {
        let src = b"//@ path: crates/core/src/fx.rs\npub fn f(o: Option<u32>) -> u32 {\n    // lint-allow(no-unwrap): demonstration of suppression filtering\n    o.unwrap()\n}\n";
        let r = lint_one("whatever.rs", src);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
