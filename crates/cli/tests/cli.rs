//! Process-level tests for the `triad` binary: exit codes, stderr routing,
//! and a serve/client round trip over a real socket.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};

fn triad() -> Command {
    Command::new(env!("CARGO_BIN_EXE_triad"))
}

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("triad_bin_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

#[test]
fn parse_errors_exit_2_with_stderr() {
    let out = triad().args(["detect", "notaflag"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(out.stdout.is_empty());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--flag"));
}

#[test]
fn runtime_errors_exit_1_with_stderr() {
    // Unknown command.
    let out = triad().arg("teleport").output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("error:"));

    // detect pointed at a missing file.
    let out = triad()
        .args([
            "detect",
            "--test",
            "/nonexistent/series.txt",
            "--train",
            "x",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.starts_with("error:"), "{err}");

    // eval with mismatched files.
    let dir = tmpdir("eval");
    let a = dir.join("a.txt");
    let b = dir.join("b.txt");
    std::fs::write(&a, "1\n0\n1\n").unwrap();
    std::fs::write(&b, "1\n0\n").unwrap();
    let out = triad()
        .args(["eval", "--pred"])
        .arg(&a)
        .arg("--labels")
        .arg(&b)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("mismatch"));

    // client against a server that isn't there.
    let out = triad()
        .args([
            "client",
            "--verb",
            "health",
            "--addr",
            "127.0.0.1:1",
            "--timeout-ms",
            "500",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn help_and_gen_exit_0() {
    let out = triad().arg("help").output().unwrap();
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));

    let dir = tmpdir("gen");
    let out = triad()
        .args(["gen", "--out"])
        .arg(&dir)
        .args(["--seed", "5", "--id", "2"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("wrote"));
    let _ = std::fs::remove_dir_all(&dir);
}

struct KillOnDrop(Child);

impl Drop for KillOnDrop {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

#[test]
fn serve_and_client_round_trip_over_the_binary() {
    let dir = tmpdir("serve");
    let models = dir.join("models");
    let train_path = dir.join("train.txt");
    let series_path = dir.join("series.txt");
    let train: Vec<String> = (0..600)
        .map(|i| {
            format!(
                "{:.6}",
                (2.0 * std::f64::consts::PI * i as f64 / 40.0).sin()
            )
        })
        .collect();
    std::fs::write(&train_path, train.join("\n")).unwrap();
    let series: Vec<String> = (0..300)
        .map(|i| {
            let base = (2.0 * std::f64::consts::PI * i as f64 / 40.0).sin();
            format!(
                "{:.6}",
                base + if (120..160).contains(&i) { 0.9 } else { 0.0 }
            )
        })
        .collect();
    std::fs::write(&series_path, series.join("\n")).unwrap();

    let mut serve = KillOnDrop(
        triad()
            .args(["serve", "--addr", "127.0.0.1:0", "--models"])
            .arg(&models)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .unwrap(),
    );
    // The first stdout line announces the resolved ephemeral address.
    let mut banner = String::new();
    BufReader::new(serve.0.stdout.as_mut().unwrap())
        .read_line(&mut banner)
        .unwrap();
    let addr = banner
        .split_whitespace()
        .find(|w| {
            w.contains(':')
                && w.split(':')
                    .nth(1)
                    .is_some_and(|p| p.parse::<u16>().is_ok())
        })
        .unwrap_or_else(|| panic!("no address in banner {banner:?}"))
        .to_string();

    let client = |args: &[&str]| {
        let out = triad()
            .args(["client", "--addr", &addr])
            .args(args)
            .output()
            .unwrap();
        (
            out.status.code(),
            String::from_utf8_lossy(&out.stdout).trim().to_string(),
        )
    };

    let (code, body) = client(&["--verb", "health"]);
    assert_eq!(code, Some(0), "{body}");
    assert!(body.contains("\"status\":\"ok\""), "{body}");

    let (code, body) = client(&[
        "--verb",
        "fit",
        "--model",
        "cli-demo",
        "--train",
        train_path.to_str().unwrap(),
        "--epochs",
        "2",
        "--seed",
        "3",
        "--merlin_step",
        "4",
    ]);
    assert_eq!(code, Some(0), "{body}");
    assert!(body.contains("\"model\":\"cli-demo\""), "{body}");

    let (code, body) = client(&[
        "--verb",
        "detect",
        "--model",
        "cli-demo",
        "--series",
        series_path.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(0), "{body}");
    assert!(body.contains("\"selected\""), "{body}");

    let (code, body) = client(&["--verb", "stats", "--format", "text"]);
    assert_eq!(code, Some(0), "{body}");
    assert!(body.contains("triad_detect_total 1"), "{body}");

    // Detect against a model name that doesn't exist fails loudly.
    let (code, _) = client(&[
        "--verb",
        "detect",
        "--model",
        "ghost",
        "--series",
        series_path.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(1));

    let (code, _) = client(&["--verb", "shutdown"]);
    assert_eq!(code, Some(0));
    let status = serve.0.wait().unwrap();
    assert!(status.success(), "serve exited with {status:?}");

    let _ = std::fs::remove_dir_all(&dir);
}
