//! A minimal JSON reader, just enough to round-trip the traces this crate
//! emits (and to validate them in CI without pulling in a dependency —
//! `obs` sits below every other crate, so it cannot borrow `triad-serve`'s
//! parser).
//!
//! Supports the full value grammar (objects, arrays, strings with escapes,
//! numbers, booleans, null); objects preserve key order. Rejects trailing
//! garbage. Not a validator of every RFC corner (e.g. it accepts lone
//! surrogates in `\u` escapes by replacing them), which is fine for the
//! trusted, self-produced documents it reads.

/// A parsed JSON value. Object entries keep their document order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric field as an exact non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Object entries in document order.
    pub fn entries(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(entries) => Some(entries),
            _ => None,
        }
    }
}

/// Parse one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        b: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.b.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

/// Nesting beyond this is rejected (recursive-descent stack guard).
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    b: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.b.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, c: u8) -> Result<(), String> {
        match self.bump() {
            Some(got) if got == c => Ok(()),
            got => Err(format!(
                "expected {:?} at byte {}, got {:?}",
                c as char,
                self.pos.saturating_sub(1),
                got.map(|g| g as char)
            )),
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".to_string());
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, out: Json) -> Result<Json, String> {
        if self.b[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(out)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.b[start..self.pos])
            .map_err(|_| "non-UTF8 number".to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let code = self.hex4()?;
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    other => {
                        return Err(format!("bad escape {:?}", other.map(|c| c as char)));
                    }
                },
                Some(c) if c < 0x80 => out.push(c as char),
                Some(c) => {
                    // Re-decode the UTF-8 sequence starting at this byte.
                    let start = self.pos - 1;
                    let len = utf8_len(c);
                    let end = (start + len).min(self.b.len());
                    let chunk = std::str::from_utf8(&self.b[start..end])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut code = 0u32;
        for _ in 0..4 {
            let c = self
                .bump()
                .ok_or_else(|| "truncated \\u escape".to_string())?;
            let digit = (c as char)
                .to_digit(16)
                .ok_or_else(|| format!("bad hex digit {:?}", c as char))?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Arr(items)),
                other => {
                    return Err(format!(
                        "expected ',' or ']' got {:?}",
                        other.map(|c| c as char)
                    ));
                }
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect_byte(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            entries.push((key, val));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Obj(entries)),
                other => {
                    return Err(format!(
                        "expected ',' or '}}' got {:?}",
                        other.map(|c| c as char)
                    ));
                }
            }
        }
    }
}

/// Byte length of the UTF-8 sequence introduced by `first`.
fn utf8_len(first: u8) -> usize {
    if first >= 0xF0 {
        4
    } else if first >= 0xE0 {
        3
    } else {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        let v = parse(r#"{"a":1,"b":[true,null,"x\n"],"c":{"d":-2.5e1}}"#).expect("parse");
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(1));
        let arr = v.get("b").and_then(Json::as_arr).expect("arr");
        assert_eq!(arr[0], Json::Bool(true));
        assert_eq!(arr[1], Json::Null);
        assert_eq!(arr[2].as_str(), Some("x\n"));
        let d = v.get("c").and_then(|c| c.get("d")).and_then(Json::as_f64);
        assert_eq!(d, Some(-25.0));
    }

    #[test]
    fn preserves_object_key_order() {
        let v = parse(r#"{"z":1,"a":2,"m":3}"#).expect("parse");
        let keys: Vec<&str> = v
            .entries()
            .expect("obj")
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, vec!["z", "a", "m"]);
    }

    #[test]
    fn rejects_trailing_garbage_and_truncation() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1,").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn unicode_escapes_and_raw_utf8() {
        let v = parse(r#""café — ok""#).expect("parse");
        assert_eq!(v.as_str(), Some("café — ok"));
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let mut s = String::new();
        for _ in 0..300 {
            s.push('[');
        }
        for _ in 0..300 {
            s.push(']');
        }
        assert!(parse(&s).is_err());
    }

    #[test]
    fn u64_rejects_fractions_and_negatives() {
        assert_eq!(parse("1.5").expect("ok").as_u64(), None);
        assert_eq!(parse("-3").expect("ok").as_u64(), None);
        assert_eq!(parse("42").expect("ok").as_u64(), Some(42));
    }
}
