//! Workspace-wide numeric-mode switch.
//!
//! TriAD's determinism contract (ROADMAP item 1) admits two kernel families:
//!
//! * [`NumericMode::Exact`] — the original scalar loops. Bit-identical output
//!   at any thread count, and the byte-for-byte reference every other path is
//!   judged against. This is the default everywhere.
//! * [`NumericMode::Fast`] — MASS/FFT distance profiles and reassociating
//!   reductions. Still bit-identical across thread counts *within* the mode
//!   (every parallel merge uses an exactly associative operation), but float
//!   summation order differs from `Exact`, so results are gated by the
//!   tolerance-equivalence harness (`tests/numeric_equivalence.rs`) instead of
//!   byte equality: same discord indices, distances within 1e-6 relative.
//!
//! The enum lives in `tsops` because it sits at the bottom of the dependency
//! graph; `core` re-exports it so downstream crates (cli, serve, bench,
//! evalbed) can name it without depending on `tsops` directly.

use std::fmt;
use std::str::FromStr;

/// Which kernel family the pipeline should use for tolerance-gated hot paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum NumericMode {
    /// Bit-identical scalar kernels (the default).
    #[default]
    Exact,
    /// MASS/FFT kernels: tolerance-equivalent to `Exact`, bit-identical
    /// across thread counts within the mode.
    Fast,
}

impl NumericMode {
    /// Canonical lowercase name, matching what [`FromStr`] accepts.
    pub fn as_str(self) -> &'static str {
        match self {
            NumericMode::Exact => "exact",
            NumericMode::Fast => "fast",
        }
    }

    /// True when the tolerance-gated fast kernels are selected.
    pub fn is_fast(self) -> bool {
        matches!(self, NumericMode::Fast)
    }
}

impl fmt::Display for NumericMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for NumericMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "exact" => Ok(NumericMode::Exact),
            "fast" => Ok(NumericMode::Fast),
            other => Err(format!(
                "unknown numeric mode '{other}' (expected 'exact' or 'fast')"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_both_modes_case_insensitively() {
        assert_eq!("exact".parse::<NumericMode>().unwrap(), NumericMode::Exact);
        assert_eq!("Fast".parse::<NumericMode>().unwrap(), NumericMode::Fast);
        assert_eq!(" FAST ".parse::<NumericMode>().unwrap(), NumericMode::Fast);
        assert!("quick".parse::<NumericMode>().is_err());
    }

    #[test]
    fn default_is_exact_and_round_trips() {
        assert_eq!(NumericMode::default(), NumericMode::Exact);
        for mode in [NumericMode::Exact, NumericMode::Fast] {
            assert_eq!(mode.as_str().parse::<NumericMode>().unwrap(), mode);
            assert_eq!(format!("{mode}"), mode.as_str());
        }
        assert!(NumericMode::Fast.is_fast());
        assert!(!NumericMode::Exact.is_fast());
    }
}
