//! Inference: window ranking → single-window selection → MERLIN → voting
//! (Sec. III-D).

use crate::config::TriadConfig;
use crate::error::DetectError;
use crate::features::FeatureExtractor;
use crate::train::Model;
use crate::Domain;
use discord::merlin::MerlinConfig;
use discord::{merlin_mode, Discord};
use std::ops::Range;
use tsops::window::{Segmenter, Windows};

/// Per-domain window-similarity ranking (the data behind Fig. 11).
#[derive(Debug, Clone, PartialEq)]
pub struct DomainRanking {
    pub domain: Domain,
    /// Mean pairwise similarity of each test window to all others — low
    /// means deviant.
    pub scores: Vec<f64>,
    /// Index of the most deviant window (arg-min of `scores`).
    pub top: usize,
    /// The `Z` most deviant windows, most deviant first (`tops[0] == top`).
    pub tops: Vec<usize>,
}

/// Full detection output.
#[derive(Debug, Clone, PartialEq)]
pub struct TriadDetection {
    /// Per-test-point vote totals (Eq. 8).
    pub votes: Vec<f64>,
    /// Final point-wise labels.
    pub prediction: Vec<bool>,
    /// Voting threshold used (mean of the positive votes).
    pub threshold: f64,
    /// Similarity rankings per active domain.
    pub rankings: Vec<DomainRanking>,
    /// Candidate windows nominated per domain (deduplicated), as test-split
    /// ranges — "up to three" (Sec. III-D).
    pub candidates: Vec<Range<usize>>,
    /// The single window selected by comparison against the training split.
    pub selected_window: Range<usize>,
    /// Region (selected window + padding) handed to MERLIN.
    pub search_region: Range<usize>,
    /// Per-length discords found by MERLIN, in test-split coordinates.
    pub discords: Vec<Discord>,
    /// Whether the Sec. IV-G fallback fired (discords disagreed with the
    /// selected window).
    pub used_fallback: bool,
}

impl TriadDetection {
    /// Convenience: the predicted anomalous region as the hull of positive
    /// points (`None` if nothing was flagged).
    pub fn predicted_region(&self) -> Option<Range<usize>> {
        let first = self.prediction.iter().position(|&b| b)?;
        let last = self.prediction.iter().rposition(|&b| b)?;
        Some(first..last + 1)
    }
}

/// Mean-pairwise-similarity scores from unit-norm embedding rows.
///
/// The pairwise dots are pure, so they are computed in parallel (keyed by
/// the lower index `i`); the accumulation into per-window sums then replays
/// the historical serial order — `i` ascending, `j` ascending, `scores[i]`
/// before `scores[j]` — so the result is bit-identical at any thread count.
fn similarity_scores(rows: &[Vec<f32>]) -> Vec<f64> {
    let m = rows.len();
    if m <= 1 {
        return vec![0.0; m];
    }
    let d = rows.first().map_or(0, |r| r.len());
    let par = parallel::ambient().for_work((m * (m - 1) / 2) * d.max(1), 1 << 15);
    let dots: Vec<Vec<f64>> = parallel::map_indexed(par, rows, |i, ri| {
        ((i + 1)..m)
            .map(|j| parallel::reduce::dot_f32_in_order(ri, &rows[j]))
            .collect()
    });
    let mut scores = vec![0.0f64; m];
    for (i, drow) in dots.iter().enumerate() {
        for (off, &dot) in drow.iter().enumerate() {
            scores[i] += dot;
            scores[i + 1 + off] += dot;
        }
    }
    for s in &mut scores {
        *s /= (m - 1) as f64;
    }
    scores
}

/// Rank windows by ascending similarity score: build the [`DomainRanking`]
/// shared by the offline and streaming paths.
fn ranking_from_scores(domain: Domain, scores: Vec<f64>, z: usize) -> DomainRanking {
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
    let tops: Vec<usize> = order.into_iter().take(z).collect();
    DomainRanking {
        domain,
        top: tops.first().copied().unwrap_or(0),
        tops,
        scores,
    }
}

/// Incremental stage-1 ranker: windows arrive one at a time (a live stream)
/// instead of all at once.
///
/// Embeds each pushed window with the trained encoders (batch of one — every
/// op in the embed path is batch-row independent, so the rows are
/// bit-identical to the offline chunked path) and folds it into running
/// pairwise-dot sums in the exact accumulation order of the offline
/// [`similarity_scores`]: the scores from [`rankings`](OnlineRanker::rankings)
/// are therefore *bit-equal* to an offline ranking over the same windows, not
/// merely close. That equality is what lets a streaming server finish with
/// [`detect_from_rankings`] and reproduce `detect` exactly.
#[derive(Debug, Clone)]
pub struct OnlineRanker {
    domains: Vec<Domain>,
    /// Per domain: one unit-norm embedding row per pushed window.
    rows: Vec<Vec<Vec<f32>>>,
    /// Per domain: running pairwise-dot sum per window (divided by `m−1`
    /// only when rankings are materialised).
    sums: Vec<Vec<f64>>,
}

impl OnlineRanker {
    /// An empty ranker over the model's active domains (in encoder order,
    /// matching the offline ranking order).
    pub fn new(model: &Model) -> Self {
        let domains: Vec<Domain> = model.encoders.iter().map(|(d, _)| *d).collect();
        let k = domains.len();
        OnlineRanker {
            domains,
            rows: vec![Vec::new(); k],
            sums: vec![Vec::new(); k],
        }
    }

    /// Number of windows pushed so far.
    pub fn window_count(&self) -> usize {
        self.rows.first().map_or(0, |r| r.len())
    }

    /// The active domains, in ranking order.
    pub fn domains(&self) -> &[Domain] {
        &self.domains
    }

    /// Embed one completed window in every active domain and fold it into
    /// the running similarity sums. Returns the new window's mean similarity
    /// to all previous windows, per domain (0.0 for the very first window) —
    /// the instantaneous normality signal a streaming caller thresholds.
    pub fn push_window(
        &mut self,
        model: &Model,
        fx: &FeatureExtractor,
        window: &[f64],
    ) -> Vec<(Domain, f64)> {
        let mut out = Vec::with_capacity(self.domains.len());
        for (di, d) in self.domains.iter().enumerate() {
            let row = model
                .embed_windows(fx, &[window], *d)
                .pop()
                .unwrap_or_default();
            let prior = &mut self.rows[di];
            let m = prior.len();
            let mut own = 0.0f64;
            for (i, other) in prior.iter().enumerate() {
                let dot: f64 = other
                    .iter()
                    .zip(&row)
                    .map(|(a, b)| (*a as f64) * (*b as f64))
                    .sum();
                self.sums[di][i] += dot;
                own += dot;
            }
            self.sums[di].push(own);
            prior.push(row);
            let mean = if m == 0 { 0.0 } else { own / m as f64 };
            out.push((*d, mean));
        }
        out
    }

    /// Materialise the per-domain rankings over every window pushed so far;
    /// bit-identical to the offline stage-1 rankings of the same windows.
    pub fn rankings(&self, top_z: usize) -> Vec<DomainRanking> {
        let z = top_z.max(1);
        let m = self.window_count();
        self.domains
            .iter()
            .enumerate()
            .map(|(di, d)| {
                let scores: Vec<f64> = if m <= 1 {
                    vec![0.0; m]
                } else {
                    self.sums[di].iter().map(|s| s / (m - 1) as f64).collect()
                };
                ranking_from_scores(*d, scores, z)
            })
            .collect()
    }

    /// Raw state access for checkpointing: `(embedding rows, dot sums)` per
    /// domain, aligned with [`domains`](OnlineRanker::domains).
    pub fn state(&self) -> (&[Vec<Vec<f32>>], &[Vec<f64>]) {
        (&self.rows, &self.sums)
    }

    /// Rebuild from checkpointed state; lengths must be consistent with the
    /// model's domain list and with each other.
    pub fn from_state(model: &Model, rows: Vec<Vec<Vec<f32>>>, sums: Vec<Vec<f64>>) -> Self {
        let fresh = OnlineRanker::new(model);
        assert_eq!(
            rows.len(),
            fresh.domains.len(),
            "ranker state: domain count"
        );
        assert_eq!(
            sums.len(),
            fresh.domains.len(),
            "ranker state: domain count"
        );
        for (r, s) in rows.iter().zip(&sums) {
            assert_eq!(r.len(), s.len(), "ranker state: rows vs sums length");
        }
        OnlineRanker {
            domains: fresh.domains,
            rows,
            sums,
        }
    }
}

/// Distance from a z-normalised probe window to its nearest training
/// subsequence (stride-1 traversal, Sec. III-D1).
///
/// The stride-1 scan splits into per-worker ranges whose minima fold with
/// `f64::min` — exactly associative, so the parallel fold is bit-identical
/// to the serial scan.
fn nearest_normal_distance(train: &[f64], probe: &[f64]) -> f64 {
    let l = probe.len();
    if train.len() < l {
        return f64::INFINITY;
    }
    let z = tsops::stats::znormalize(probe);
    let (means, stds) = tsops::stats::rolling_mean_std(train, l);
    let starts = means.len().min(stds.len());
    let par = parallel::ambient().for_work(starts * l, 1 << 15);
    let partials = parallel::map_ranges(par, starts, |range| {
        let mut best = f64::INFINITY;
        // The probe is zero-mean, so the training mean cancels out of the
        // cross term; only σ is needed.
        for start in range {
            let sigma = stds[start];
            let seg = &train[start..start + l];
            let d2 = if sigma < 1e-12 {
                l as f64 // constant training segment vs unit-norm probe
            } else {
                let dot = parallel::reduce::sum_in_order(z.iter().zip(seg).map(|(a, t)| a * t));
                (2.0 * l as f64 - 2.0 * dot / sigma).max(0.0)
            };
            if d2 < best {
                best = d2;
            }
        }
        best
    });
    partials.into_iter().fold(f64::INFINITY, f64::min).sqrt()
}

/// Run the full detection pipeline on a test split, validating the input
/// first: an empty test split has nothing to rank, and a single NaN/Inf
/// sample would silently poison the similarity scores and the discord
/// search rather than fail loudly.
pub fn try_detect(
    cfg: &TriadConfig,
    model: &Model,
    fx: &FeatureExtractor,
    segmenter: &Segmenter,
    train: &[f64],
    test: &[f64],
) -> Result<TriadDetection, DetectError> {
    if test.is_empty() {
        return Err(DetectError::EmptyTest);
    }
    if let Some(index) = test.iter().position(|v| !v.is_finite()) {
        return Err(DetectError::NonFiniteTest { index });
    }
    if let Some(index) = train.iter().position(|v| !v.is_finite()) {
        return Err(DetectError::NonFiniteTrain { index });
    }
    Ok(run_detect(cfg, model, fx, segmenter, train, test))
}

/// Panicking convenience wrapper over [`try_detect`] for experiment and
/// test code that constructs its own (known-finite) inputs. Server-side
/// code must use [`try_detect`] so a bad request cannot abort a worker.
pub fn detect(
    cfg: &TriadConfig,
    model: &Model,
    fx: &FeatureExtractor,
    segmenter: &Segmenter,
    train: &[f64],
    test: &[f64],
) -> TriadDetection {
    match try_detect(cfg, model, fx, segmenter, train, test) {
        Ok(det) => det,
        // lint-allow(no-panic): documented panicking convenience wrapper; the
        // fallible path is try_detect and serve/cli use it
        Err(e) => panic!("detect: {e}"),
    }
}

fn run_detect(
    cfg: &TriadConfig,
    model: &Model,
    fx: &FeatureExtractor,
    segmenter: &Segmenter,
    train: &[f64],
    test: &[f64],
) -> TriadDetection {
    // Scope the deterministic worker pool to this detection; everything
    // inside is thread-count invariant (see crates/parallel).
    parallel::with_ambient(cfg.threads, || {
        obs::enable_from_config(cfg.trace);
        let mut root = obs::span("detect");
        root.add_field("n_test", test.len());
        let n = test.len();
        // Segment the test split; a split shorter than one window becomes a
        // single clamped window.
        let windows: Windows = segmenter.segment_clamped(n);
        let slices: Vec<&[f64]> = (0..windows.count())
            .map(|i| windows.slice(test, i))
            .collect();

        // --- Stage 1: per-domain window ranking (top Z per domain; the paper
        //     uses Z = 1 since every test set holds a single event) ---
        let z = cfg.top_z.max(1);
        let mut rankings = Vec::with_capacity(model.encoders.len());
        for (d, _) in &model.encoders {
            let rows = {
                let mut s = obs::span("featurize");
                s.add_field("domain", format!("{d:?}"));
                s.add_field("windows", slices.len());
                model.embed_windows_par(cfg, fx, &slices, *d)
            };
            let ranking = {
                let mut s = obs::span("rank");
                s.add_field("domain", format!("{d:?}"));
                let scores = similarity_scores(&rows);
                ranking_from_scores(*d, scores, z)
            };
            rankings.push(ranking);
        }

        detect_from_rankings(cfg, train, test, &windows, rankings)
    })
}

/// Stages 2–4 of the pipeline, starting from already-computed stage-1
/// rankings: single-window selection against the training split, MERLIN
/// discord search, and voting.
///
/// This is the batch pipeline's back half exposed for callers that produced
/// the rankings some other way — above all the streaming engine, which ranks
/// windows incrementally with [`OnlineRanker`] and then calls this to close a
/// stream with a detection identical to the offline [`detect`].
pub fn detect_from_rankings(
    cfg: &TriadConfig,
    train: &[f64],
    test: &[f64],
    windows: &Windows,
    rankings: Vec<DomainRanking>,
) -> TriadDetection {
    // Streaming callers reach stages 2–4 directly, so the ambient worker
    // pool is (re-)scoped here as well; nesting under `run_detect` is a
    // no-op since the request is the same.
    parallel::with_ambient(cfg.threads, move || {
        obs::enable_from_config(cfg.trace);
        detect_from_rankings_inner(cfg, train, test, windows, rankings)
    })
}

fn detect_from_rankings_inner(
    cfg: &TriadConfig,
    train: &[f64],
    test: &[f64],
    windows: &Windows,
    rankings: Vec<DomainRanking>,
) -> TriadDetection {
    let n = test.len();
    let mut cand_idx: Vec<usize> = rankings
        .iter()
        .flat_map(|r| r.tops.iter().copied())
        .collect();
    cand_idx.sort_unstable();
    cand_idx.dedup();
    let candidates: Vec<Range<usize>> = cand_idx.iter().map(|&i| windows.range(i)).collect();

    // --- Stage 2: single-window selection against the training split ---
    let selected_window = {
        let mut s = obs::span("narrow");
        s.add_field("candidates", candidates.len());
        candidates
            .iter()
            .max_by(|a, b| {
                nearest_normal_distance(train, &test[(*a).clone()])
                    .total_cmp(&nearest_normal_distance(train, &test[(*b).clone()]))
            })
            .cloned()
            .unwrap_or(0..n.min(windows.len))
    };

    // --- Stage 3: MERLIN around the selected window ---
    let l = selected_window.len();
    let pad = (cfg.merlin_pad_windows * l as f64) as usize;
    let region_start = selected_window.start.saturating_sub(pad);
    let region_end = (selected_window.end + pad).min(n);
    let search_region = region_start..region_end;
    let region = &test[search_region.clone()];

    let max_len = cfg.merlin_max_len.min(l.max(cfg.merlin_min_len));
    let sweep = MerlinConfig::new(cfg.merlin_min_len.min(max_len).max(2), max_len)
        .with_step(cfg.merlin_step);
    let discords: Vec<Discord> = {
        let mut s = obs::span("discord");
        s.add_field("region_len", region.len());
        let found: Vec<Discord> = merlin_mode(region, sweep, cfg.numeric_mode)
            .into_iter()
            .map(|d| Discord {
                index: d.index + region_start,
                ..d
            })
            .collect();
        s.add_field("discords", found.len());
        found
    };

    let mut vote_span = obs::span("vote");
    // --- Stage 4: voting (Eq. 8) ---
    // Plain mode: every source contributes one vote, exactly Eq. 8. Weighted
    // mode (the paper's Sec. III-D3 future-work scoring): discord votes are
    // normalised by the number of swept lengths so the window vote and the
    // discord evidence are on comparable scales, and the window vote carries
    // a configurable weight.
    let discord_vote = if cfg.weighted_voting && !discords.is_empty() {
        1.0 / discords.len() as f64
    } else {
        1.0
    };
    let window_vote = if cfg.weighted_voting {
        cfg.triad_vote_weight
    } else {
        1.0
    };
    let mut votes = vec![0.0f64; n];
    for v in &mut votes[selected_window.clone()] {
        *v += window_vote; // s_TriAD
    }
    for d in &discords {
        let r = d.range();
        for v in &mut votes[r.start.min(n)..r.end.min(n)] {
            *v += discord_vote; // s_dd, one vote per length
        }
    }
    let positives: Vec<f64> = votes.iter().copied().filter(|&v| v > 0.0).collect();
    let threshold = if positives.is_empty() {
        0.0
    } else {
        positives.iter().sum::<f64>() / positives.len() as f64
    };
    let mut prediction: Vec<bool> = votes.iter().map(|&v| v > threshold).collect();

    // --- Sec. IV-G fallback: anomalous segment dominating the window ---
    // If the voting result contains no positives inside the selected window,
    // the discord search was likely inverted (normal data flagged as the
    // "odd one out"); flag the whole selected window instead.
    let any_inside = prediction[selected_window.clone()].iter().any(|&b| b);
    let used_fallback = !any_inside;
    if used_fallback {
        for p in &mut prediction {
            *p = false;
        }
        for p in &mut prediction[selected_window.clone()] {
            *p = true;
        }
    }
    vote_span.add_field("used_fallback", used_fallback);
    drop(vote_span);

    TriadDetection {
        votes,
        prediction,
        threshold,
        rankings,
        candidates,
        selected_window,
        search_region,
        discords,
        used_fallback,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn similarity_scores_flag_the_odd_row() {
        let mut rows = vec![vec![1.0f32, 0.0, 0.0]; 5];
        rows.push(vec![0.0, 1.0, 0.0]); // deviant
        let s = similarity_scores(&rows);
        let argmin = s
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(argmin, 5);
    }

    #[test]
    fn similarity_scores_degenerate_sizes() {
        assert!(similarity_scores(&[]).is_empty());
        assert_eq!(similarity_scores(&[vec![1.0, 0.0]]), vec![0.0]);
    }

    #[test]
    fn nearest_normal_distance_zero_for_training_shapes() {
        let train: Vec<f64> = (0..300)
            .map(|i| (2.0 * std::f64::consts::PI * i as f64 / 30.0).sin())
            .collect();
        let probe = &train[60..135]; // an exact training window
        let d = nearest_normal_distance(&train, probe);
        assert!(d < 1e-4, "distance {d}");
        // A frequency-shifted probe is far from everything.
        let odd: Vec<f64> = (0..75)
            .map(|i| (2.0 * std::f64::consts::PI * i as f64 / 7.0).sin())
            .collect();
        let d2 = nearest_normal_distance(&train, &odd);
        assert!(d2 > 1.0, "odd distance {d2}");
    }

    #[test]
    fn nearest_normal_distance_short_train() {
        assert!(nearest_normal_distance(&[1.0, 2.0], &[1.0, 2.0, 3.0]).is_infinite());
    }

    #[test]
    fn try_detect_rejects_degenerate_input_without_a_model() {
        // Validation happens before the model is touched, so a zero-size
        // model skeleton is enough to exercise the error paths.
        let cfg = TriadConfig::default();
        let model = Model {
            encoders: Vec::new(),
            head: crate::encoder::ProjectionHead::new(
                &mut <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(0),
                4,
            ),
        };
        let fx = FeatureExtractor {
            period: 10,
            residual_scale: 1.0,
        };
        let seg = Segmenter::new(8, 4);
        assert_eq!(
            try_detect(&cfg, &model, &fx, &seg, &[1.0, 2.0], &[]),
            Err(crate::error::DetectError::EmptyTest)
        );
        assert_eq!(
            try_detect(&cfg, &model, &fx, &seg, &[1.0], &[0.0, f64::NAN, 1.0]),
            Err(crate::error::DetectError::NonFiniteTest { index: 1 })
        );
        assert_eq!(
            try_detect(&cfg, &model, &fx, &seg, &[f64::INFINITY], &[0.0, 1.0]),
            Err(crate::error::DetectError::NonFiniteTrain { index: 0 })
        );
    }

    // End-to-end detect() behaviour is covered by the pipeline tests and the
    // integration suite (tests/), which train a real model first.
}
