//@ path: crates/bench/src/fixture.rs
//@ expect: shadowed-threads
// Seeded violation: three private thread-count reads around the pool's
// plumbing — each re-derives what parallel::ambient() already carries.
pub fn my_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

pub fn my_resolve(n: usize) -> parallel::Parallelism {
    parallel::Parallelism::resolve(n)
}

pub fn my_env() -> bool {
    std::env::var("TRIAD_THREADS").is_ok()
}
