//! Archive generation runs over the deterministic parallel runtime; the
//! output must be bit-identical to the serial path at every thread count.

use ucrgen::archive::{generate_archive, generate_dataset, ArchiveConfig};
use ucrgen::UcrDataset;

fn series_bits(d: &UcrDataset) -> Vec<u64> {
    d.series.iter().map(|v| v.to_bits()).collect()
}

#[test]
fn parallel_archive_is_bit_identical_to_serial() {
    let cfg = ArchiveConfig {
        count: 24,
        ..ArchiveConfig::default()
    };
    // The reference: explicit per-id generation (the documented contract
    // that each dataset is a pure function of (seed, id)).
    let serial: Vec<UcrDataset> = (1..=cfg.count).map(|id| generate_dataset(7, id)).collect();
    for threads in [1usize, 4] {
        let archived = parallel::with_ambient(threads, || generate_archive(7, &cfg));
        assert_eq!(archived.len(), serial.len(), "threads={threads}");
        for (a, b) in archived.iter().zip(&serial) {
            assert_eq!(a.id, b.id, "threads={threads}");
            assert_eq!(a.name, b.name, "threads={threads}");
            assert_eq!(a.train_end, b.train_end, "threads={threads}");
            assert_eq!(a.anomaly, b.anomaly, "threads={threads}");
            // Bit-level equality of every sample, not just approximate.
            assert_eq!(
                series_bits(a),
                series_bits(b),
                "threads={threads} id={}",
                a.id
            );
        }
    }
}

#[test]
fn thread_counts_agree_with_each_other_on_nondefault_config() {
    // A non-default config exercises the cfg-threading path (generate_dataset
    // cannot serve as the reference here).
    let cfg = ArchiveConfig {
        count: 13,
        intensity: 0.4,
        noise_mult: 3.0,
        ..ArchiveConfig::default()
    };
    let one = parallel::with_ambient(1, || generate_archive(11, &cfg));
    let four = parallel::with_ambient(4, || generate_archive(11, &cfg));
    assert_eq!(one, four);
}
