//! PA%K — point adjustment gated on detection coverage (Kim et al.,
//! AAAI 2022), the paper's headline point-wise metric.
//!
//! A ground-truth segment is adjusted (rewritten to all-positive) only when
//! **strictly more than K percent** of its points were predicted positive
//! (Eq. 9). `K = 0` recovers plain PA; `K = 100` recovers plain point-wise
//! scoring. Following the paper, scores are swept over `K = 1..=100` and
//! summarised by the area under each curve (a plain mean over the grid).

use crate::{pointwise, segments, Prf};

/// Apply PA%K adjustment at a single threshold `k` (percent, 0–100).
pub fn adjust_k(pred: &[bool], labels: &[bool], k: f64) -> Vec<bool> {
    assert_eq!(pred.len(), labels.len(), "prediction/label length mismatch");
    let mut adjusted = pred.to_vec();
    for seg in segments(labels) {
        let hit = seg.clone().filter(|&i| pred[i]).count();
        let frac = hit as f64 / seg.len() as f64;
        if hit > 0 && frac * 100.0 > k {
            for i in seg {
                adjusted[i] = true;
            }
        }
    }
    adjusted
}

/// Metrics at one K.
pub fn prf_at_k(pred: &[bool], labels: &[bool], k: f64) -> Prf {
    pointwise::prf(&adjust_k(pred, labels, k), labels)
}

/// AUC summary over `K = 1..=100`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PakAuc {
    pub precision_auc: f64,
    pub recall_auc: f64,
    pub f1_auc: f64,
}

/// Sweep `K = 1..=100` and average — the `F1(PA%K)` columns of Table III.
///
/// ```
/// // One 4-point event, half detected: plain PA would score a perfect 1.0,
/// // PA%K only adjusts for K < 50.
/// let labels = [false, true, true, true, true, false];
/// let pred   = [false, true, true, false, false, false];
/// let auc = evalkit::pak::pak_auc(&pred, &labels);
/// let pa  = evalkit::pa::prf_pa(&pred, &labels);
/// let pw  = evalkit::pointwise::prf(&pred, &labels);
/// assert!(pa.f1 > auc.f1_auc && auc.f1_auc > pw.f1);
/// ```
pub fn pak_auc(pred: &[bool], labels: &[bool]) -> PakAuc {
    let mut acc = PakAuc::default();
    for k in 1..=100u32 {
        let m = prf_at_k(pred, labels, k as f64);
        acc.precision_auc += m.precision;
        acc.recall_auc += m.recall;
        acc.f1_auc += m.f1;
    }
    acc.precision_auc /= 100.0;
    acc.recall_auc /= 100.0;
    acc.f1_auc /= 100.0;
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn long_event_single_hit() -> (Vec<bool>, Vec<bool>) {
        let mut labels = vec![false; 100];
        for l in labels[40..90].iter_mut() {
            *l = true;
        }
        let mut pred = vec![false; 100];
        pred[60] = true;
        (pred, labels)
    }

    #[test]
    fn k0_equals_pa_and_k100_equals_pw() {
        let (pred, labels) = long_event_single_hit();
        let k0 = prf_at_k(&pred, &labels, 0.0);
        let pa = crate::pa::prf_pa(&pred, &labels);
        assert_eq!(k0.f1, pa.f1);
        let k100 = prf_at_k(&pred, &labels, 100.0);
        let pw = crate::pointwise::prf(&pred, &labels);
        assert_eq!(k100.f1, pw.f1);
    }

    #[test]
    fn adjustment_requires_strictly_more_than_k() {
        // Segment of 10 with exactly 5 hits = 50%.
        let mut labels = vec![false; 20];
        for l in labels[5..15].iter_mut() {
            *l = true;
        }
        let mut pred = vec![false; 20];
        for p in pred[5..10].iter_mut() {
            *p = true;
        }
        // K=50: 50% is NOT > 50% → no adjustment.
        let adj = adjust_k(&pred, &labels, 50.0);
        assert_eq!(adj, pred);
        // K=49.9: adjusted.
        let adj = adjust_k(&pred, &labels, 49.9);
        assert!(adj[5..15].iter().all(|&b| b));
    }

    #[test]
    fn f1_is_monotone_nonincreasing_in_k() {
        let (pred, labels) = long_event_single_hit();
        let mut last = f64::INFINITY;
        for k in 0..=100 {
            let f1 = prf_at_k(&pred, &labels, k as f64).f1;
            assert!(f1 <= last + 1e-12, "K={k}: {f1} > {last}");
            last = f1;
        }
    }

    #[test]
    fn auc_moderates_pa_inflation() {
        let (pred, labels) = long_event_single_hit();
        let pa = crate::pa::prf_pa(&pred, &labels).f1;
        let pw = crate::pointwise::prf(&pred, &labels).f1;
        let auc = pak_auc(&pred, &labels).f1_auc;
        assert!(pa > 0.99);
        assert!(auc < pa && auc >= pw, "pw {pw} auc {auc} pa {pa}");
        // Single-point coverage of a 50-point event: nearly all K reject the
        // adjustment, so the AUC stays close to the point-wise score.
        assert!(auc < 0.1, "auc {auc}");
    }

    #[test]
    fn dense_detection_survives_all_k() {
        // 100% coverage: adjusted at every K < 100.
        let mut labels = vec![false; 30];
        for l in labels[10..20].iter_mut() {
            *l = true;
        }
        let pred = labels.clone();
        let auc = pak_auc(&pred, &labels);
        assert!((auc.f1_auc - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_hits_never_adjusted() {
        let mut labels = vec![false; 10];
        labels[3] = true;
        let pred = vec![false; 10];
        // hit=0, frac=0: even K=0 must not adjust (hit > 0 required).
        let adj = adjust_k(&pred, &labels, 0.0);
        assert_eq!(adj, pred);
    }
}
