//! Fig. 14 — MTGFlow's failure mode: normal patterns flagged as anomalies.
//! Runs MTGFlow-lite on one dataset per anomaly family and reports how many
//! of its top-scoring points are false positives.

use baselines::mtgflow_lite::{MtgFlowConfig, MtgFlowLite};
use baselines::Detector;
use bench::{print_table, Args};
use ucrgen::anomaly::AnomalyKind;
use ucrgen::archive::generate_dataset;

fn main() {
    let args = Args::parse();
    let epochs: usize = args.get("epochs", 8);
    let mut rows = Vec::new();
    for kind in AnomalyKind::ALL {
        let ds = (0..60)
            .map(|id| generate_dataset(7, id))
            .find(|d| d.kind == kind)
            .expect("every kind appears");
        let scores = MtgFlowLite::new(MtgFlowConfig {
            epochs,
            ..Default::default()
        })
        .score(ds.train(), ds.test());
        let labels = ds.test_labels();
        // Flag the top anomaly-length points; count false positives.
        let k = ds.anomaly_len();
        let mut idx: Vec<usize> = (0..scores.len()).collect();
        idx.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
        let flagged = &idx[..k];
        let fp = flagged.iter().filter(|&&i| !labels[i]).count();
        rows.push(vec![
            kind.name().to_string(),
            ds.name.clone(),
            format!("{k}"),
            format!("{fp}"),
            format!("{:.0}%", 100.0 * fp as f64 / k as f64),
        ]);
    }
    print_table(
        "Fig. 14 — MTGFlow-lite top-k flags: false-positive share per anomaly family",
        &["Anomaly", "Dataset", "k (=|A|)", "False pos", "FP share"],
        &rows,
    );
    println!("\nHigh FP shares on subtle families (duration / contextual) reproduce the");
    println!("paper's observation that MTGFlow misclassifies normal patterns.");
}
