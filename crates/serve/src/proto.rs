//! Wire protocol: line-delimited JSON request/response envelopes.
//!
//! Every request is one JSON object on one line: `{"verb": "...", ...}`,
//! optionally carrying an `"id"` the server echoes back. Every response is
//! one JSON object on one line: `{"ok": true, "verb": ..., "id"?, ...body}`
//! or `{"ok": false, "verb": ..., "id"?, "error": "..."}`.
//!
//! Response bodies are emitted with order-preserving, shortest-round-trip
//! float serialization (see `json`), so the same detection always renders
//! as the same byte string — the e2e suite relies on this to assert
//! bit-for-bit identical results across evict/reload.

use crate::json::Value;
use triad_core::TriadDetection;
use triad_stream::{StreamEvent, StreamStatus};

/// Maximum accepted request line, bytes (guards the server against a rogue
/// client streaming an unbounded line).
pub const MAX_LINE_BYTES: usize = 64 * 1024 * 1024;

/// Build a success response envelope around `body` fields.
pub fn ok_response(verb: &str, id: Option<&Value>, body: Vec<(String, Value)>) -> Value {
    let mut fields: Vec<(String, Value)> = vec![("ok".into(), Value::Bool(true))];
    if let Some(id) = id {
        fields.push(("id".into(), id.clone()));
    }
    fields.push(("verb".into(), verb.into()));
    fields.extend(body);
    Value::Obj(fields)
}

/// Build an error response envelope.
pub fn err_response(verb: &str, id: Option<&Value>, error: &str) -> Value {
    let mut fields: Vec<(String, Value)> = vec![("ok".into(), Value::Bool(false))];
    if let Some(id) = id {
        fields.push(("id".into(), id.clone()));
    }
    fields.push(("verb".into(), verb.into()));
    fields.push(("error".into(), error.into()));
    Value::Obj(fields)
}

fn range_value(r: &std::ops::Range<usize>) -> Value {
    Value::Arr(vec![Value::Num(r.start as f64), Value::Num(r.end as f64)])
}

/// Deterministic JSON body for one detection result.
pub fn detection_fields(model: &str, det: &TriadDetection) -> Value {
    let flagged: Vec<Value> = det
        .prediction
        .iter()
        .enumerate()
        .filter(|(_, &b)| b)
        .map(|(i, _)| Value::Num(i as f64))
        .collect();
    let region = match det.predicted_region() {
        Some(r) => range_value(&r),
        None => Value::Null,
    };
    let discords: Vec<Value> = det
        .discords
        .iter()
        .map(|d| {
            Value::Obj(vec![
                ("index".into(), Value::Num(d.index as f64)),
                ("length".into(), Value::Num(d.length as f64)),
                ("distance".into(), Value::Num(d.distance)),
            ])
        })
        .collect();
    Value::Obj(vec![
        ("model".into(), model.into()),
        ("n_points".into(), Value::Num(det.prediction.len() as f64)),
        ("threshold".into(), Value::Num(det.threshold)),
        ("selected".into(), range_value(&det.selected_window)),
        ("search_region".into(), range_value(&det.search_region)),
        ("region".into(), region),
        ("n_flagged".into(), Value::Num(flagged.len() as f64)),
        ("flagged".into(), Value::Arr(flagged)),
        ("used_fallback".into(), Value::Bool(det.used_fallback)),
        ("discords".into(), Value::Arr(discords)),
    ])
}

fn event_value(ev: &StreamEvent) -> Value {
    Value::Obj(vec![
        ("start".into(), Value::Num(ev.start as f64)),
        (
            "end".into(),
            match ev.end {
                Some(e) => Value::Num(e as f64),
                None => Value::Null,
            },
        ),
        ("peak_deviance".into(), Value::Num(ev.peak_deviance)),
    ])
}

/// Deterministic JSON body for a stream status snapshot (`stream.poll` and
/// the status half of `stream.close`).
pub fn stream_status_fields(stream: &str, status: &StreamStatus) -> Vec<(String, Value)> {
    vec![
        ("stream".into(), stream.into()),
        ("seq".into(), Value::Num(status.seq as f64)),
        ("retained".into(), Value::Num(status.retained as f64)),
        ("evicted".into(), Value::Num(status.evicted as f64)),
        (
            "windows_scored".into(),
            Value::Num(status.windows_scored as f64),
        ),
        (
            "last_deviance".into(),
            match status.last_deviance {
                Some(d) => Value::Num(d),
                None => Value::Null,
            },
        ),
        ("anomalous".into(), Value::Bool(status.anomalous)),
        (
            "events".into(),
            Value::Arr(status.events.iter().map(event_value).collect()),
        ),
        (
            "live".into(),
            Value::Obj(vec![
                ("mean".into(), Value::Num(status.live.mean)),
                ("variance".into(), Value::Num(status.live.variance)),
                (
                    "spectral_power".into(),
                    Value::Num(status.live.spectral_power),
                ),
                ("residual_rms".into(), Value::Num(status.live.residual_rms)),
            ]),
        ),
        (
            "rejected_nonfinite".into(),
            Value::Num(status.rejected_nonfinite as f64),
        ),
    ]
}

/// Merge a detection body into a response envelope (the detect verb's
/// success path).
pub fn detect_response(id: Option<&Value>, body: Value) -> Value {
    let fields = match body {
        Value::Obj(fields) => fields,
        other => vec![("result".into(), other)],
    };
    ok_response("detect", id, fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelopes_echo_id_and_preserve_order() {
        let id = Value::Num(7.0);
        let ok = ok_response(
            "list",
            Some(&id),
            vec![("models".into(), Value::Arr(vec![]))],
        );
        assert_eq!(
            ok.to_string(),
            r#"{"ok":true,"id":7,"verb":"list","models":[]}"#
        );
        let err = err_response("detect", None, "no such model");
        assert_eq!(
            err.to_string(),
            r#"{"ok":false,"verb":"detect","error":"no such model"}"#
        );
    }
}
