//! `triad bench` — the fixed-seed performance harness for the parallel
//! runtime.
//!
//! Runs each hot-path workload (train, detect, stream, discord) at 1/2/4/8
//! worker threads and writes one `BENCH_<stage>.json` per stage with wall
//! time, speedup relative to the serial (1-thread) run, and an FNV-1a
//! checksum of the stage's outputs. The checksum doubles as a determinism
//! probe: the parallel runtime's contract is that every thread count yields
//! bit-identical results, so the harness fails loudly if any checksum
//! disagrees (the test suite proves the same property exhaustively in
//! `tests/parallel_determinism.rs`).
//!
//! `--smoke` shrinks every workload to CI scale while keeping the JSON
//! schema identical, so `scripts/ci.sh` can validate the output shape on
//! any machine. Speedups are *measured*, never asserted here — they depend
//! on physical cores (a single-core container reports ~1.0x).

use obs::now_instant;
use std::path::PathBuf;

use discord::fast::merlin_fast;
use discord::merlin::{merlin, MerlinConfig};
use triad_core::{persist, NumericMode, TriAd, TriadConfig, TriadDetection};
use triad_stream::{StreamConfig, StreamEngine};
use tsops::mass::SelfJoinPlan;

/// Worker-thread counts every stage is swept over.
pub const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Options parsed from `triad bench` flags.
pub struct BenchOptions {
    /// CI scale: tiny workloads, one repetition, same JSON schema.
    pub smoke: bool,
    /// Where the `BENCH_<stage>.json` files land.
    pub out_dir: PathBuf,
    /// Subset of stages to run (empty = all of
    /// train/detect/stream/discord/kernels).
    pub stages: Vec<String>,
    /// Numeric kernel mode for the detect/stream stages. The discord stage
    /// always measures *both* modes (that comparison is its whole point),
    /// and train/kernels are mode-independent.
    pub numeric_mode: NumericMode,
}

/// One timed run of a stage at a fixed thread count.
struct ThreadRun {
    threads: usize,
    wall_ms: f64,
    speedup_vs_serial: f64,
    checksum: u64,
}

/// Everything written to `BENCH_<stage>.json`.
struct StageReport {
    stage: &'static str,
    smoke: bool,
    workload: String,
    runs: Vec<ThreadRun>,
    /// Fast-numeric-mode sweep (discord stage only; empty elsewhere).
    /// `runs` stays the exact-mode sweep so the schema and any baseline
    /// comparisons against older files keep their meaning.
    fast_runs: Vec<ThreadRun>,
    bit_identical: bool,
}

fn runs_json(runs: &[ThreadRun]) -> String {
    let rows: Vec<String> = runs
        .iter()
        .map(|r| {
            format!(
                "    {{\"threads\": {}, \"wall_ms\": {:.3}, \
                 \"speedup_vs_serial\": {:.3}, \"checksum\": \"{:016x}\"}}",
                r.threads, r.wall_ms, r.speedup_vs_serial, r.checksum
            )
        })
        .collect();
    rows.join(",\n")
}

impl StageReport {
    /// Fast-mode serial time vs exact-mode serial time (discord only).
    fn fast_speedup_vs_exact(&self) -> Option<f64> {
        let exact = self.runs.first()?.wall_ms;
        let fast = self.fast_runs.first()?.wall_ms;
        (fast > 0.0).then(|| exact / fast)
    }

    fn to_json(&self) -> String {
        let fast = match self.fast_speedup_vs_exact() {
            Some(s) => format!(
                "  \"fast_runs\": [\n{}\n  ],\n  \"fast_speedup_vs_exact\": {:.3},\n",
                runs_json(&self.fast_runs),
                s
            ),
            None => String::new(),
        };
        format!(
            "{{\n  \"stage\": \"{}\",\n  \"smoke\": {},\n  \"workload\": \"{}\",\n  \
             \"runs\": [\n{}\n  ],\n{}  \"bit_identical\": {}\n}}\n",
            self.stage,
            self.smoke,
            self.workload,
            runs_json(&self.runs),
            fast,
            self.bit_identical
        )
    }

    fn summary(&self) -> String {
        let serial = self.runs.first().map(|r| r.wall_ms).unwrap_or(0.0);
        let at4 = self
            .runs
            .iter()
            .find(|r| r.threads == 4)
            .map(|r| r.speedup_vs_serial)
            .unwrap_or(1.0);
        let fast = match self.fast_speedup_vs_exact() {
            Some(s) => format!(
                ", fast 1t {:.1} ms ({s:.1}x vs exact)",
                self.fast_runs[0].wall_ms
            ),
            None => String::new(),
        };
        format!(
            "{:7} : 1t {:9.1} ms, 4t speedup {:.2}x{}, bit-identical {} → BENCH_{}.json",
            self.stage, serial, at4, fast, self.bit_identical, self.stage
        )
    }
}

/// FNV-1a 64-bit, folded over the canonical byte encoding of each value.
/// Stable across runs and platforms (f64 hashed via `to_bits`).
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
    }
    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn f32(&mut self, v: f32) {
        self.u64(v.to_bits() as u64);
    }
    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }
    fn done(self) -> u64 {
        self.0
    }
}

fn hash_detection(h: &mut Fnv, det: &TriadDetection) {
    for &v in &det.votes {
        h.f64(v);
    }
    for &b in &det.prediction {
        h.u64(b as u64);
    }
    h.f64(det.threshold);
    h.usize(det.selected_window.start);
    h.usize(det.selected_window.end);
    h.usize(det.search_region.start);
    h.usize(det.search_region.end);
    for c in &det.candidates {
        h.usize(c.start);
        h.usize(c.end);
    }
    for r in &det.rankings {
        for &s in &r.scores {
            h.f64(s);
        }
    }
    for d in &det.discords {
        h.usize(d.index);
        h.usize(d.length);
        h.f64(d.distance);
    }
    h.u64(det.used_fallback as u64);
}

/// The harness series: a two-harmonic periodic signal with deterministic
/// jitter and a frequency-shift anomaly inside the test split — the same
/// family the pipeline tests train on, scaled up.
fn make_series(n_train: usize, n_test: usize, period: usize) -> (Vec<f64>, Vec<f64>) {
    use std::f64::consts::PI;
    let p = period as f64;
    let mut full: Vec<f64> = (0..n_train + n_test)
        .map(|i| {
            (2.0 * PI * i as f64 / p).sin()
                + 0.3 * (4.0 * PI * i as f64 / p).sin()
                + 0.02 * (((i * 37) % 97) as f64 / 97.0 - 0.5)
        })
        .collect();
    let a0 = n_train + n_test / 2;
    for i in a0..(a0 + 2 * period).min(n_train + n_test) {
        full[i] = (8.0 * PI * i as f64 / p).sin();
    }
    (full[..n_train].to_vec(), full[n_train..].to_vec())
}

/// Sweep `run` over [`THREAD_COUNTS`], timing `reps` repetitions (best-of)
/// and demanding the checksum is stable across repetitions.
fn sweep(
    stage: &str,
    reps: usize,
    mut run: impl FnMut(usize) -> Result<u64, String>,
) -> Result<Vec<ThreadRun>, String> {
    let mut runs: Vec<ThreadRun> = Vec::new();
    let mut serial_ms = 0.0;
    for &t in &THREAD_COUNTS {
        let mut best = f64::INFINITY;
        let mut checksum = 0u64;
        for rep in 0..reps.max(1) {
            let t0 = now_instant();
            let c = run(t)?;
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            if rep == 0 {
                checksum = c;
            } else if c != checksum {
                return Err(format!(
                    "{stage}: output changed between repetitions at {t} threads \
                     ({checksum:016x} vs {c:016x})"
                ));
            }
            best = best.min(ms);
        }
        if t == 1 {
            serial_ms = best;
        }
        runs.push(ThreadRun {
            threads: t,
            wall_ms: best,
            speedup_vs_serial: if best > 0.0 { serial_ms / best } else { 0.0 },
            checksum,
        });
    }
    Ok(runs)
}

fn report(stage: &'static str, smoke: bool, workload: String, runs: Vec<ThreadRun>) -> StageReport {
    let bit_identical = runs.windows(2).all(|w| w[0].checksum == w[1].checksum);
    StageReport {
        stage,
        smoke,
        workload,
        runs,
        fast_runs: Vec::new(),
        bit_identical,
    }
}

/// Attach a fast-mode sweep to a report. Bit-identity is demanded *within*
/// each mode (the modes' checksums legitimately differ — that is what
/// "tolerance-equivalent" means).
fn with_fast(mut rep: StageReport, fast_runs: Vec<ThreadRun>) -> StageReport {
    rep.bit_identical =
        rep.bit_identical && fast_runs.windows(2).all(|w| w[0].checksum == w[1].checksum);
    rep.fast_runs = fast_runs;
    rep
}

/// Train stage: full `fit` with sharded gradient accumulation
/// (`grad_shards = 4`), checksummed over the persisted TRIAD2 bytes plus
/// the per-epoch loss curve — the strongest train-side identity probe.
fn stage_train(smoke: bool, reps: usize) -> Result<StageReport, String> {
    let (n_train, period) = if smoke { (512, 32) } else { (1536, 32) };
    let (train, _) = make_series(n_train, 0, period);
    let cfg = TriadConfig {
        epochs: if smoke { 1 } else { 2 },
        depth: if smoke { 2 } else { 3 },
        hidden: if smoke { 8 } else { 16 },
        batch: 8,
        grad_shards: 4,
        seed: 7,
        ..TriadConfig::default()
    };
    let runs = sweep("train", reps, |t| {
        let mut c = cfg.clone();
        c.threads = t;
        let fitted = TriAd::new(c).fit(&train)?;
        let mut bytes = Vec::new();
        persist::save(&mut bytes, &fitted).map_err(|e| e.to_string())?;
        let mut h = Fnv::new();
        h.bytes(&bytes);
        for &l in &fitted.report().epoch_losses {
            h.f64(l);
        }
        Ok(h.done())
    })?;
    Ok(report(
        "train",
        smoke,
        format!("fit n={n_train} (period {period}, grad_shards 4)"),
        runs,
    ))
}

/// Detect stage: one serial fit, then the full inference pipeline
/// (embedding, ranking, selection, MERLIN, voting) timed per thread count.
fn stage_detect(smoke: bool, reps: usize, mode: NumericMode) -> Result<StageReport, String> {
    let (n_train, n_test, period) = if smoke {
        (512, 512, 32)
    } else {
        (1024, 4096, 32)
    };
    let (train, test) = make_series(n_train, n_test, period);
    let cfg = TriadConfig {
        epochs: if smoke { 1 } else { 2 },
        depth: if smoke { 2 } else { 3 },
        hidden: if smoke { 8 } else { 24 },
        batch: 8,
        merlin_step: if smoke { 8 } else { 2 },
        seed: 7,
        numeric_mode: mode,
        ..TriadConfig::default()
    };
    let mut fitted = TriAd::new(cfg).fit(&train)?;
    let runs = sweep("detect", reps, |t| {
        fitted.set_threads(t);
        let det = fitted.detect(&test);
        let mut h = Fnv::new();
        hash_detection(&mut h, &det);
        Ok(h.done())
    })?;
    Ok(report(
        "detect",
        smoke,
        format!("fit n={n_train}, detect n={n_test} (period {period}, {mode})"),
        runs,
    ))
}

/// Stream stage: sample-at-a-time replay through the incremental engine
/// plus the offline-equivalent `finalize`, per thread count.
fn stage_stream(smoke: bool, reps: usize, mode: NumericMode) -> Result<StageReport, String> {
    let (n_train, n_test, period) = if smoke {
        (512, 512, 32)
    } else {
        (1024, 4096, 32)
    };
    let (train, test) = make_series(n_train, n_test, period);
    let cfg = TriadConfig {
        epochs: 1,
        depth: if smoke { 2 } else { 3 },
        hidden: if smoke { 8 } else { 24 },
        batch: 8,
        merlin_step: if smoke { 8 } else { 2 },
        seed: 7,
        numeric_mode: mode,
        ..TriadConfig::default()
    };
    let mut fitted = TriAd::new(cfg).fit(&train)?;
    let scfg = StreamConfig {
        capacity: n_test + 1,
        ..StreamConfig::default()
    };
    let runs = sweep("stream", reps, |t| {
        fitted.set_threads(t);
        let mut engine = StreamEngine::new(&fitted, scfg.clone());
        for &x in &test {
            let _ = engine.push(&fitted, x);
        }
        let status = engine.status();
        let mut h = Fnv::new();
        h.u64(status.seq);
        h.usize(status.windows_scored);
        for ev in &status.events {
            h.u64(ev.start);
            h.u64(ev.end.unwrap_or(u64::MAX));
            h.f64(ev.peak_deviance);
        }
        let det = engine.finalize(&fitted).map_err(|e| e.to_string())?;
        hash_detection(&mut h, &det);
        Ok(h.done())
    })?;
    Ok(report(
        "stream",
        smoke,
        format!("replay n={n_test} + finalize (period {period}, {mode})"),
        runs,
    ))
}

/// Discord stage: the MERLIN length sweep alone, at bench scale. Both
/// numeric modes are always measured — `runs` is the exact ladder, the
/// extra `fast_runs`/`fast_speedup_vs_exact` keys are the MASS kernels.
fn stage_discord(smoke: bool, reps: usize) -> Result<StageReport, String> {
    let (n, min_len, max_len, step) = if smoke {
        (300, 8, 32, 4)
    } else {
        (1200, 8, 96, 1)
    };
    let (series, _) = make_series(n, 0, 25);
    let mcfg = MerlinConfig::new(min_len, max_len).with_step(step);
    let hash_discords = |found: &[discord::Discord]| {
        let mut h = Fnv::new();
        for d in found {
            h.usize(d.index);
            h.usize(d.length);
            h.f64(d.distance);
        }
        h.done()
    };
    let runs = sweep("discord", reps, |t| {
        Ok(hash_discords(&parallel::with_ambient(t, || {
            merlin(&series, mcfg)
        })))
    })?;
    let fast_runs = sweep("discord (fast)", reps, |t| {
        Ok(hash_discords(&parallel::with_ambient(t, || {
            merlin_fast(&series, mcfg)
        })))
    })?;
    Ok(with_fast(
        report(
            "discord",
            smoke,
            format!("merlin n={n}, lengths {min_len}..={max_len} step {step}"),
            runs,
        ),
        fast_runs,
    ))
}

/// One kernel-vs-naive comparison in `BENCH_kernels.json`.
struct KernelRun {
    kernel: &'static str,
    workload: String,
    naive_ms: f64,
    fast_ms: f64,
    checksum: u64,
}

/// Everything written to `BENCH_kernels.json`. Same top-level shape as a
/// [`StageReport`] (stage/smoke/workload/runs/bit_identical, hex checksum
/// strings) so the CI schema check treats every bench file alike; the per-run
/// speedup is `speedup_vs_naive` because the reference here is the scalar
/// kernel, not a serial thread count.
struct KernelReport {
    smoke: bool,
    runs: Vec<KernelRun>,
    bit_identical: bool,
}

impl KernelReport {
    fn to_json(&self) -> String {
        let rows: Vec<String> = self
            .runs
            .iter()
            .map(|r| {
                format!(
                    "    {{\"kernel\": \"{}\", \"workload\": \"{}\", \"naive_ms\": {:.3}, \
                     \"fast_ms\": {:.3}, \"speedup_vs_naive\": {:.3}, \"checksum\": \"{:016x}\"}}",
                    r.kernel,
                    r.workload,
                    r.naive_ms,
                    r.fast_ms,
                    if r.fast_ms > 0.0 {
                        r.naive_ms / r.fast_ms
                    } else {
                        0.0
                    },
                    r.checksum
                )
            })
            .collect();
        format!(
            "{{\n  \"stage\": \"kernels\",\n  \"smoke\": {},\n  \
             \"workload\": \"hot kernels vs scalar references\",\n  \
             \"runs\": [\n{}\n  ],\n  \"bit_identical\": {}\n}}\n",
            self.smoke,
            rows.join(",\n"),
            self.bit_identical
        )
    }

    fn summary(&self) -> String {
        let per: Vec<String> = self
            .runs
            .iter()
            .map(|r| {
                format!(
                    "{} {:.1}x",
                    r.kernel,
                    if r.fast_ms > 0.0 {
                        r.naive_ms / r.fast_ms
                    } else {
                        0.0
                    }
                )
            })
            .collect();
        format!(
            "kernels : {}, bit-identical {} → BENCH_kernels.json",
            per.join(", "),
            self.bit_identical
        )
    }
}

/// Deterministic pseudo-random fill in [-0.5, 0.5) — no RNG dependency, and
/// the pattern has no structure a kernel could shortcut on.
fn synth(i: usize, salt: usize) -> f64 {
    (((i * 37 + salt * 101) % 997) as f64) / 997.0 - 0.5
}

/// Time `run` over `reps` repetitions (best-of), demanding a stable
/// checksum, and return `(best_ms, checksum)`.
fn time_best(reps: usize, mut run: impl FnMut() -> u64, label: &str) -> Result<(f64, u64), String> {
    let mut best = f64::INFINITY;
    let mut checksum = 0u64;
    for rep in 0..reps.max(1) {
        let t0 = now_instant();
        let c = run();
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        if rep == 0 {
            checksum = c;
        } else if c != checksum {
            return Err(format!(
                "kernels/{label}: output changed between repetitions"
            ));
        }
        best = best.min(ms);
    }
    Ok((best, checksum))
}

/// Kernels stage: each hot kernel against a scalar reference on the same
/// data. Speedups are informational; what is *gated* is that each kernel's
/// output is reproduction-stable and thread-count-invariant, and that it
/// agrees with its reference (bit-identically for the blocked f32 kernels,
/// which reorder nothing per output element; within FFT tolerance for the
/// sliding-dot kernel).
fn stage_kernels(smoke: bool, reps: usize) -> Result<KernelReport, String> {
    let mut runs = Vec::new();
    let mut identical = true;

    // --- sliding dot products: SelfJoinPlan (FFT) vs the naive O(n·m) loop.
    {
        let (n, m) = if smoke { (2048, 64) } else { (16384, 256) };
        let series: Vec<f64> = (0..n).map(|i| synth(i, 1)).collect();
        let query = &series[..m];
        let (naive_ms, _) = time_best(
            reps,
            || {
                let mut h = Fnv::new();
                for i in 0..=n - m {
                    let dot: f64 = series[i..i + m]
                        .iter()
                        .zip(query)
                        .map(|(&a, &b)| a * b)
                        .sum();
                    h.f64(dot);
                }
                h.done()
            },
            "sliding_dot naive",
        )?;
        let plan = SelfJoinPlan::new(&series, m);
        let (fast_ms, checksum) = time_best(
            reps,
            || {
                let dots = plan.sliding_dots(query);
                let mut h = Fnv::new();
                for &d in &dots {
                    h.f64(d);
                }
                h.done()
            },
            "sliding_dot fast",
        )?;
        // Tolerance gate: the FFT path must agree with the naive loop.
        let dots = plan.sliding_dots(query);
        for (i, &d) in dots.iter().enumerate() {
            let naive: f64 = series[i..i + m]
                .iter()
                .zip(query)
                .map(|(&a, &b)| a * b)
                .sum();
            if (d - naive).abs() > 1e-6 * (1.0 + naive.abs()) {
                return Err(format!(
                    "kernels/sliding_dot: FFT dot diverged at {i}: {d} vs {naive}"
                ));
            }
        }
        runs.push(KernelRun {
            kernel: "sliding_dot",
            workload: format!("n={n} m={m}"),
            naive_ms,
            fast_ms,
            checksum,
        });
    }

    // --- matmul: the blocked graph kernel vs the textbook scalar loop.
    {
        let d = if smoke { 48 } else { 160 };
        let a: Vec<f32> = (0..d * d).map(|i| synth(i, 2) as f32).collect();
        let b: Vec<f32> = (0..d * d).map(|i| synth(i, 3) as f32).collect();
        let (naive_ms, naive_sum) = time_best(
            reps,
            || {
                let mut h = Fnv::new();
                for i in 0..d {
                    for j in 0..d {
                        let mut acc = 0.0f32;
                        for kk in 0..d {
                            acc += a[i * d + kk] * b[kk * d + j];
                        }
                        h.f32(acc);
                    }
                }
                h.done()
            },
            "matmul naive",
        )?;
        let run_graph = |threads: usize| {
            parallel::with_ambient(threads, || {
                let mut g = neuro::Graph::new();
                let na = g.input(neuro::Tensor::from_vec(&[d, d], a.clone()));
                let nb = g.input(neuro::Tensor::from_vec(&[d, d], b.clone()));
                let out = g.matmul(na, nb);
                let mut h = Fnv::new();
                for &v in g.value(out).data() {
                    h.f32(v);
                }
                h.done()
            })
        };
        let (fast_ms, checksum) = time_best(reps, || run_graph(1), "matmul fast")?;
        // The blocked kernel accumulates each element in the same k-ascending
        // order as the scalar loop, so agreement is bit-exact — and so is the
        // parallel split (row-disjoint).
        identical &= checksum == naive_sum && run_graph(4) == checksum;
        runs.push(KernelRun {
            kernel: "matmul",
            workload: format!("{d}x{d}x{d}"),
            naive_ms,
            fast_ms,
            checksum,
        });
    }

    // --- conv1d: the zipped-slice graph kernel vs the guarded scalar loop.
    {
        let (bsz, cin, cout, l, k, dilation) = if smoke {
            (2, 4, 4, 128, 5, 2)
        } else {
            (8, 8, 8, 512, 9, 4)
        };
        let x: Vec<f32> = (0..bsz * cin * l).map(|i| synth(i, 4) as f32).collect();
        let w: Vec<f32> = (0..cout * cin * k).map(|i| synth(i, 5) as f32).collect();
        let bias: Vec<f32> = (0..cout).map(|i| synth(i, 6) as f32).collect();
        let half = (k / 2) * dilation;
        let (naive_ms, naive_sum) = time_best(
            reps,
            || {
                let mut h = Fnv::new();
                for bi in 0..bsz {
                    for co in 0..cout {
                        let mut orow = vec![bias[co]; l];
                        for ci in 0..cin {
                            for kk in 0..k {
                                let wk = w[(co * cin + ci) * k + kk];
                                for (t, o) in orow.iter_mut().enumerate() {
                                    let src = t + kk * dilation;
                                    if src >= half && src - half < l {
                                        *o += wk * x[(bi * cin + ci) * l + src - half];
                                    }
                                }
                            }
                        }
                        for &v in &orow {
                            h.f32(v);
                        }
                    }
                }
                h.done()
            },
            "conv1d naive",
        )?;
        let run_graph = |threads: usize| {
            parallel::with_ambient(threads, || {
                let mut g = neuro::Graph::new();
                let nx = g.input(neuro::Tensor::from_vec(&[bsz, cin, l], x.clone()));
                let nw = g.input(neuro::Tensor::from_vec(&[cout, cin, k], w.clone()));
                let nb = g.input(neuro::Tensor::from_vec(&[cout], bias.clone()));
                let out = g.conv1d(nx, nw, nb, dilation);
                let mut h = Fnv::new();
                for &v in g.value(out).data() {
                    h.f32(v);
                }
                h.done()
            })
        };
        let (fast_ms, checksum) = time_best(reps, || run_graph(1), "conv1d fast")?;
        identical &= checksum == naive_sum && run_graph(4) == checksum;
        runs.push(KernelRun {
            kernel: "conv1d",
            workload: format!("B={bsz} Cin={cin} Cout={cout} L={l} K={k} d={dilation}"),
            naive_ms,
            fast_ms,
            checksum,
        });
    }

    Ok(KernelReport {
        smoke,
        runs,
        bit_identical: identical,
    })
}

/// Run the harness; returns human-readable summary lines (one per stage).
/// Errors if a stage's outputs are not bit-identical across thread counts —
/// the files are still written first so the discrepancy can be inspected.
pub fn run_bench(opts: &BenchOptions) -> Result<Vec<String>, String> {
    const ALL: [&str; 5] = ["train", "detect", "stream", "discord", "kernels"];
    for s in &opts.stages {
        if !ALL.contains(&s.as_str()) {
            return Err(format!(
                "unknown bench stage {s:?} (expected one of {ALL:?})"
            ));
        }
    }
    let wanted = |s: &str| opts.stages.is_empty() || opts.stages.iter().any(|x| x == s);
    std::fs::create_dir_all(&opts.out_dir).map_err(|e| e.to_string())?;
    let reps = if opts.smoke { 1 } else { 2 };

    let mut out = Vec::new();
    let mut broken = Vec::new();
    for stage in ALL {
        if !wanted(stage) {
            continue;
        }
        if stage == "kernels" {
            let rep = stage_kernels(opts.smoke, reps)?;
            let path = opts.out_dir.join("BENCH_kernels.json");
            std::fs::write(&path, rep.to_json()).map_err(|e| format!("{path:?}: {e}"))?;
            if !rep.bit_identical {
                broken.push("kernels");
            }
            out.push(rep.summary());
            continue;
        }
        let rep = match stage {
            "train" => stage_train(opts.smoke, reps)?,
            "detect" => stage_detect(opts.smoke, reps, opts.numeric_mode)?,
            "stream" => stage_stream(opts.smoke, reps, opts.numeric_mode)?,
            _ => stage_discord(opts.smoke, reps)?,
        };
        let path = opts.out_dir.join(format!("BENCH_{}.json", rep.stage));
        std::fs::write(&path, rep.to_json()).map_err(|e| format!("{path:?}: {e}"))?;
        if !rep.bit_identical {
            broken.push(rep.stage);
        }
        out.push(rep.summary());
    }
    if !broken.is_empty() {
        return Err(format!(
            "stages {broken:?} were NOT bit-identical across thread counts — \
             see BENCH_<stage>.json in {:?}",
            opts.out_dir
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_order_sensitive_and_stable() {
        let mut a = Fnv::new();
        a.f64(1.0);
        a.f64(2.0);
        let mut b = Fnv::new();
        b.f64(2.0);
        b.f64(1.0);
        assert_ne!(a.done(), b.done());
        let mut c = Fnv::new();
        c.bytes(b"hello");
        // Reference FNV-1a 64 of "hello".
        assert_eq!(c.done(), 0xa430_d846_80aa_bd0b);
    }

    #[test]
    fn smoke_bench_writes_schema_complete_files() {
        let dir = std::env::temp_dir().join(format!("triad_bench_{}", std::process::id()));
        let opts = BenchOptions {
            smoke: true,
            out_dir: dir.clone(),
            stages: vec!["discord".into()],
            numeric_mode: NumericMode::Exact,
        };
        let lines = run_bench(&opts).expect("smoke bench");
        assert_eq!(lines.len(), 1);
        let text = std::fs::read_to_string(dir.join("BENCH_discord.json")).unwrap();
        for key in [
            "\"stage\"",
            "\"smoke\"",
            "\"workload\"",
            "\"runs\"",
            "\"threads\"",
            "\"wall_ms\"",
            "\"speedup_vs_serial\"",
            "\"checksum\"",
            "\"fast_runs\"",
            "\"fast_speedup_vs_exact\"",
            "\"bit_identical\": true",
        ] {
            assert!(text.contains(key), "missing {key} in {text}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn smoke_kernels_stage_writes_schema_complete_file() {
        let dir = std::env::temp_dir().join(format!("triad_bench_k_{}", std::process::id()));
        let opts = BenchOptions {
            smoke: true,
            out_dir: dir.clone(),
            stages: vec!["kernels".into()],
            numeric_mode: NumericMode::Exact,
        };
        let lines = run_bench(&opts).expect("kernels bench");
        assert_eq!(lines.len(), 1);
        let text = std::fs::read_to_string(dir.join("BENCH_kernels.json")).unwrap();
        for key in [
            "\"stage\": \"kernels\"",
            "\"workload\"",
            "\"runs\"",
            "\"kernel\": \"sliding_dot\"",
            "\"kernel\": \"matmul\"",
            "\"kernel\": \"conv1d\"",
            "\"naive_ms\"",
            "\"fast_ms\"",
            "\"speedup_vs_naive\"",
            "\"checksum\"",
            "\"bit_identical\": true",
        ] {
            assert!(text.contains(key), "missing {key} in {text}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_stage_is_rejected() {
        let opts = BenchOptions {
            smoke: true,
            out_dir: std::env::temp_dir(),
            stages: vec!["bogus".into()],
            numeric_mode: NumericMode::Exact,
        };
        assert!(run_bench(&opts).is_err());
    }
}
