//! TriAD reproduction umbrella crate: see the `triad_core` crate for the main API.
//!
//! This package exists to host the runnable `examples/` and the cross-crate
//! integration tests in `tests/`; it re-exports nothing.
