//! Sharded multi-stream management.
//!
//! A [`StreamManager`] owns `N` worker shards. Stream names hash (FNV-1a)
//! to a shard; each shard is one OS thread owning the engines of its
//! streams, fed by a **bounded** ingest queue. A full queue sheds load
//! explicitly — `push` reports `queued: false` and the shard's
//! `dropped_backpressure` counter accounts for every dropped point — rather
//! than blocking the caller or buffering without bound.
//!
//! Models are loaded *on the shard thread* through the caller-supplied
//! [`ModelLoader`] and cached per shard: `FittedTriad` is deliberately not
//! `Send` (the `neuro` tape uses `Rc`), so the loader closure crosses
//! threads but the model it builds never does.
//!
//! When a checkpoint directory is configured, `checkpoint` persists every
//! requested stream via [`crate::checkpoint`] (write to `<name>.ckpt.tmp`,
//! then rename), shutdown checkpoints everything, and a new manager pointed
//! at the same directory restores each stream **bit-identically** before
//! accepting traffic.

use crate::checkpoint;
use crate::engine::{StreamConfig, StreamEngine, StreamStatus};
use crate::metrics::ShardMetrics;
use crate::StreamError;
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::rc::Rc;
use std::sync::Arc;
use triad_core::{FittedTriad, TriadDetection};

/// Builds a fitted model by name, on the shard thread that will own it.
/// Must be cheap to clone and callable from any thread; the returned
/// `FittedTriad` stays on the calling shard.
pub type ModelLoader = Arc<dyn Fn(&str) -> Result<FittedTriad, String> + Send + Sync>;

/// Manager-level configuration.
#[derive(Debug, Clone)]
pub struct ManagerConfig {
    /// Worker shard count (≥ 1).
    pub shards: usize,
    /// Bounded ingest-queue depth per shard, in commands.
    pub queue_capacity: usize,
    /// Where stream checkpoints live; `None` disables checkpointing.
    pub checkpoint_dir: Option<PathBuf>,
    /// Per-stream engine defaults for newly opened streams.
    pub stream_defaults: StreamConfig,
    /// Most fitted models each shard keeps cached (LRU beyond that). Many
    /// streams naming distinct models must not grow shard memory without
    /// bound; an evicted model is transparently reloaded on next use.
    pub model_cache_cap: usize,
}

impl Default for ManagerConfig {
    fn default() -> Self {
        ManagerConfig {
            shards: 2,
            queue_capacity: 1024,
            checkpoint_dir: None,
            stream_defaults: StreamConfig::default(),
            model_cache_cap: 8,
        }
    }
}

/// Receipt for a `push`: whether the batch made it onto the shard queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PushTicket {
    /// `false` means the whole batch was shed by backpressure (and counted
    /// in the shard's `dropped_backpressure`).
    pub queued: bool,
    /// Points dropped by this call (0 when queued).
    pub dropped: usize,
    /// Queue depth observed at send time.
    pub queue_len: usize,
    /// Which shard the stream routes to.
    pub shard: usize,
}

/// Everything `close` can tell the caller.
#[derive(Debug, Clone, PartialEq)]
pub struct CloseReport {
    /// Final status snapshot before teardown.
    pub status: StreamStatus,
    /// Offline-equivalent detection over the retained history, when the
    /// ring still held every sample.
    pub detection: Option<TriadDetection>,
    /// Why `detection` is absent (history evicted, empty stream, …).
    pub finalize_error: Option<String>,
}

enum Command {
    Open {
        stream: String,
        model: String,
        reply: Sender<Result<(), StreamError>>,
    },
    /// Fire-and-forget ingest; the bounded queue is the backpressure valve.
    Push {
        stream: String,
        points: Vec<f64>,
    },
    Poll {
        stream: String,
        reply: Sender<Result<StreamStatus, StreamError>>,
    },
    Close {
        stream: String,
        reply: Sender<Result<CloseReport, StreamError>>,
    },
    Checkpoint {
        stream: Option<String>,
        reply: Sender<Result<usize, StreamError>>,
    },
    List {
        reply: Sender<Vec<String>>,
    },
    Shutdown,
}

/// Hash-sharded collection of live [`StreamEngine`]s. See the module docs.
pub struct StreamManager {
    senders: Vec<Sender<Command>>,
    receivers: Vec<Receiver<Command>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    metrics: Vec<Arc<ShardMetrics>>,
    checkpoint_dir: Option<PathBuf>,
}

/// FNV-1a over the stream name: the shard-routing hash. Public so the
/// fleet tier routes identically (a name lands on the same shard index in
/// either manager).
pub fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Stream and model names become file names and hash keys; keep them to a
/// safe registry-style charset and reject path tricks like `..`. Public
/// because the fleet tier enforces the same discipline over its own store.
pub fn validate_name(name: &str, what: &str) -> Result<(), StreamError> {
    if name.is_empty() || name.len() > 64 {
        return Err(StreamError::BadName(format!(
            "{what} name must be 1–64 characters, got {}",
            name.len()
        )));
    }
    if name.starts_with('.') || name.starts_with('-') {
        return Err(StreamError::BadName(format!(
            "{what} name {name:?} must not start with '.' or '-'"
        )));
    }
    if let Some(c) = name
        .chars()
        .find(|c| !(c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '-')))
    {
        return Err(StreamError::BadName(format!(
            "{what} name {name:?} contains invalid character {c:?}"
        )));
    }
    Ok(())
}

impl StreamManager {
    /// Spawn the shard workers. When `cfg.checkpoint_dir` exists, every
    /// `*.ckpt` file in it is routed to its shard and restored before the
    /// worker accepts commands (corrupt files count as
    /// `checkpoint_failures`, never abort startup).
    pub fn new(cfg: ManagerConfig, loader: ModelLoader) -> StreamManager {
        let shards = cfg.shards.max(1);
        let mut senders = Vec::with_capacity(shards);
        let mut receivers = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        let metrics: Vec<Arc<ShardMetrics>> =
            (0..shards).map(|_| Arc::new(ShardMetrics::new())).collect();

        // Route existing checkpoints to their shards by stream name (the
        // file stem), matching where opens of the same name will land.
        let mut restores: Vec<Vec<PathBuf>> = vec![Vec::new(); shards];
        if let Some(dir) = &cfg.checkpoint_dir {
            let _ = std::fs::create_dir_all(dir);
            if let Ok(entries) = std::fs::read_dir(dir) {
                for entry in entries.flatten() {
                    let path = entry.path();
                    if path.extension().and_then(|e| e.to_str()) == Some("ckpt") {
                        if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                            let shard = (fnv1a(stem) % shards as u64) as usize;
                            restores[shard].push(path);
                        }
                    }
                }
            }
        }

        for (shard_id, restore) in restores.into_iter().enumerate() {
            let (tx, rx) = bounded::<Command>(cfg.queue_capacity.max(1));
            let worker_rx = rx.clone();
            let worker_metrics = Arc::clone(&metrics[shard_id]);
            let worker_loader = Arc::clone(&loader);
            let worker_dir = cfg.checkpoint_dir.clone();
            let defaults = cfg.stream_defaults.clone();
            let cache_cap = cfg.model_cache_cap.max(1);
            let handle = std::thread::Builder::new()
                .name(format!("triad-stream-shard-{shard_id}"))
                .spawn(move || {
                    shard_main(
                        worker_rx,
                        worker_metrics,
                        worker_loader,
                        worker_dir,
                        defaults,
                        cache_cap,
                        restore,
                    )
                })
                // lint-allow(no-unwrap): OS thread-spawn failure at startup
                // is unrecoverable resource exhaustion; there is no manager
                // to degrade to yet
                .expect("spawn shard worker");
            senders.push(tx);
            receivers.push(rx);
            handles.push(handle);
        }

        StreamManager {
            senders,
            receivers,
            handles,
            metrics,
            checkpoint_dir: cfg.checkpoint_dir,
        }
    }

    pub fn shard_count(&self) -> usize {
        self.senders.len()
    }

    /// Which shard a stream name routes to.
    pub fn shard_of(&self, stream: &str) -> usize {
        (fnv1a(stream) % self.senders.len() as u64) as usize
    }

    /// Per-shard metrics, indexed by shard id.
    pub fn shard_metrics(&self) -> &[Arc<ShardMetrics>] {
        &self.metrics
    }

    pub fn checkpoint_dir(&self) -> Option<&Path> {
        self.checkpoint_dir.as_deref()
    }

    fn request<T>(
        &self,
        shard: usize,
        make: impl FnOnce(Sender<Result<T, StreamError>>) -> Command,
    ) -> Result<T, StreamError> {
        let (reply_tx, reply_rx) = bounded(1);
        self.senders[shard]
            .send(make(reply_tx))
            .map_err(|_| StreamError::ShardUnavailable)?;
        // Workers are written to never die, but a reply that can never come
        // (a worker lost to a bug) must surface as an error, not a hang. The
        // deadline is generous because Open may be fitting a model.
        reply_rx
            .recv_timeout(std::time::Duration::from_secs(600))
            .map_err(|_| StreamError::ShardUnavailable)?
    }

    /// Open a stream bound to a registered model name.
    pub fn open(&self, stream: &str, model: &str) -> Result<(), StreamError> {
        validate_name(stream, "stream")?;
        validate_name(model, "model")?;
        let shard = self.shard_of(stream);
        self.request(shard, |reply| Command::Open {
            stream: stream.to_string(),
            model: model.to_string(),
            reply,
        })
    }

    /// Enqueue a batch of points. Never blocks: a full shard queue sheds
    /// the whole batch and accounts it in `dropped_backpressure`.
    pub fn push(&self, stream: &str, points: &[f64]) -> Result<PushTicket, StreamError> {
        validate_name(stream, "stream")?;
        let shard = self.shard_of(stream);
        let cmd = Command::Push {
            stream: stream.to_string(),
            points: points.to_vec(),
        };
        match self.senders[shard].try_send(cmd) {
            Ok(()) => {
                ShardMetrics::add(&self.metrics[shard].ingested, points.len() as u64);
                Ok(PushTicket {
                    queued: true,
                    dropped: 0,
                    queue_len: self.receivers[shard].len(),
                    shard,
                })
            }
            Err(TrySendError::Full(_)) => {
                ShardMetrics::add(
                    &self.metrics[shard].dropped_backpressure,
                    points.len() as u64,
                );
                Ok(PushTicket {
                    queued: false,
                    dropped: points.len(),
                    queue_len: self.receivers[shard].len(),
                    shard,
                })
            }
            Err(TrySendError::Disconnected(_)) => Err(StreamError::ShardUnavailable),
        }
    }

    /// Status snapshot of one stream.
    pub fn poll(&self, stream: &str) -> Result<StreamStatus, StreamError> {
        validate_name(stream, "stream")?;
        let shard = self.shard_of(stream);
        self.request(shard, |reply| Command::Poll {
            stream: stream.to_string(),
            reply,
        })
    }

    /// Close a stream: final status, offline-equivalent detection when the
    /// full history is retained, engine torn down, checkpoint file removed.
    pub fn close(&self, stream: &str) -> Result<CloseReport, StreamError> {
        validate_name(stream, "stream")?;
        let shard = self.shard_of(stream);
        self.request(shard, |reply| Command::Close {
            stream: stream.to_string(),
            reply,
        })
    }

    /// Checkpoint one stream (or every stream on every shard when `None`).
    /// Returns how many checkpoints were written.
    pub fn checkpoint(&self, stream: Option<&str>) -> Result<usize, StreamError> {
        match stream {
            Some(name) => {
                validate_name(name, "stream")?;
                let shard = self.shard_of(name);
                self.request(shard, |reply| Command::Checkpoint {
                    stream: Some(name.to_string()),
                    reply,
                })
            }
            None => {
                let mut written = 0;
                for shard in 0..self.senders.len() {
                    written += self.request(shard, |reply| Command::Checkpoint {
                        stream: None,
                        reply,
                    })?;
                }
                Ok(written)
            }
        }
    }

    /// Names of every open stream, across all shards.
    pub fn streams(&self) -> Vec<String> {
        let mut all = Vec::new();
        for shard in 0..self.senders.len() {
            let (reply_tx, reply_rx) = bounded(1);
            if self.senders[shard]
                .send(Command::List { reply: reply_tx })
                .is_ok()
            {
                if let Ok(mut names) = reply_rx.recv_timeout(std::time::Duration::from_secs(600)) {
                    all.append(&mut names);
                }
            }
        }
        all.sort();
        all
    }
}

impl Drop for StreamManager {
    /// Graceful shutdown: every shard checkpoints its streams (when a
    /// checkpoint dir is configured) and exits; all workers are joined.
    fn drop(&mut self) {
        for tx in &self.senders {
            let _ = tx.send(Command::Shutdown);
        }
        self.senders.clear();
        self.receivers.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

// ------------------------------------------------------------ shard worker

struct OpenStream {
    engine: StreamEngine,
    model: String,
    /// Engine stamp at the last successful checkpoint of this stream;
    /// `None` until one exists. Sweeps skip streams whose stamp is
    /// unchanged (the on-disk file is already bit-identical).
    saved: Option<(u64, u64)>,
}

/// One entry of the per-shard model cache, with its logical LRU stamp.
struct CachedModel {
    fitted: Rc<FittedTriad>,
    last_used: u64,
}

struct ShardState {
    /// BTreeMap so checkpoint-all and stream listings run in name order.
    streams: BTreeMap<String, OpenStream>,
    /// Per-shard model cache; `Rc` because several streams on this shard
    /// may share one model (and `FittedTriad` never leaves the thread).
    /// Bounded to `cache_cap` entries, least-recently-used evicted first
    /// (logical use counter, never wall clock).
    models: BTreeMap<String, CachedModel>,
    model_clock: u64,
    cache_cap: usize,
    loader: ModelLoader,
    dir: Option<PathBuf>,
    metrics: Arc<ShardMetrics>,
    defaults: StreamConfig,
}

impl ShardState {
    fn model(&mut self, name: &str) -> Result<Rc<FittedTriad>, StreamError> {
        self.model_clock += 1;
        if let Some(entry) = self.models.get_mut(name) {
            entry.last_used = self.model_clock;
            return Ok(Rc::clone(&entry.fitted));
        }
        let fitted = (self.loader)(name).map_err(StreamError::ModelLoad)?;
        let rc = Rc::new(fitted);
        self.models.insert(
            name.to_string(),
            CachedModel {
                fitted: Rc::clone(&rc),
                last_used: self.model_clock,
            },
        );
        // Evict least-recently-used entries beyond the cap. Streams bound
        // to an evicted model keep working: the next push/close reloads it
        // through the loader (use counters are unique, so the victim is
        // deterministic for a given command sequence).
        while self.models.len() > self.cache_cap.max(1) {
            let victim = self
                .models
                .iter()
                .min_by_key(|(_, m)| m.last_used)
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    self.models.remove(&k);
                }
                None => break,
            }
        }
        Ok(rc)
    }

    fn ckpt_path(&self, stream: &str) -> Option<PathBuf> {
        self.dir.as_ref().map(|d| d.join(format!("{stream}.ckpt")))
    }

    /// Write `<stream>.ckpt` via a temp file + rename so a crash mid-write
    /// never leaves a torn checkpoint where a good one stood.
    fn write_checkpoint(&self, stream: &str, open: &OpenStream) -> Result<(), StreamError> {
        let mut span = obs::span("shard-checkpoint");
        span.add_field("stream", stream);
        let Some(path) = self.ckpt_path(stream) else {
            return Err(StreamError::Checkpoint(triad_core::PersistError::Format(
                "no checkpoint directory configured".into(),
            )));
        };
        let tmp = path.with_extension("ckpt.tmp");
        checkpoint::save_file(&tmp, stream, &open.model, &open.engine)?;
        std::fs::rename(&tmp, &path)
            .map_err(|e| StreamError::Checkpoint(triad_core::PersistError::Io(e)))?;
        Ok(())
    }

    fn restore(&mut self, path: &Path) -> Result<String, StreamError> {
        let state = checkpoint::load_file(path)?;
        let name = state.stream.clone();
        validate_name(&name, "stream")?;
        validate_name(&state.model, "model")?;
        let model_name = state.model.clone();
        let fitted = self.model(&model_name)?;
        let engine = state.into_engine(&fitted)?;
        // The engine equals the file it was read from: mark it clean so the
        // next sweep does not rewrite an identical checkpoint.
        let saved = Some(engine.state_stamp());
        self.streams.insert(
            name.clone(),
            OpenStream {
                engine,
                model: model_name,
                saved,
            },
        );
        Ok(name)
    }

    /// Checkpoint one stream and record its stamp so sweeps can skip it
    /// while it stays clean.
    fn checkpoint_stream(&mut self, name: &str) -> Result<(), StreamError> {
        let Some(open) = self.streams.get(name) else {
            return Err(StreamError::UnknownStream(name.to_string()));
        };
        let stamp = open.engine.state_stamp();
        self.write_checkpoint(name, open)?;
        if let Some(open) = self.streams.get_mut(name) {
            open.saved = Some(stamp);
        }
        Ok(())
    }

    /// Sweep every stream on this shard, skipping the clean ones (stamp
    /// unchanged since their last save — the on-disk bytes are already
    /// identical, so rewriting them is pure I/O waste at fleet scale).
    fn checkpoint_all(&mut self) -> (usize, Option<StreamError>) {
        let names: Vec<String> = self.streams.keys().cloned().collect();
        let mut written = 0usize;
        let mut first_err = None;
        for name in names {
            let clean = self
                .streams
                .get(&name)
                .is_some_and(|o| o.saved == Some(o.engine.state_stamp()));
            if clean {
                ShardMetrics::add(&self.metrics.checkpoints_skipped_clean, 1);
                continue;
            }
            match self.checkpoint_stream(&name) {
                Ok(()) => {
                    written += 1;
                    ShardMetrics::add(&self.metrics.checkpoints_written, 1);
                }
                Err(e) => {
                    ShardMetrics::add(&self.metrics.checkpoint_failures, 1);
                    first_err.get_or_insert(e);
                }
            }
        }
        (written, first_err)
    }
}

fn shard_main(
    rx: Receiver<Command>,
    metrics: Arc<ShardMetrics>,
    loader: ModelLoader,
    dir: Option<PathBuf>,
    defaults: StreamConfig,
    cache_cap: usize,
    restore: Vec<PathBuf>,
) {
    let mut st = ShardState {
        streams: BTreeMap::new(),
        models: BTreeMap::new(),
        model_clock: 0,
        cache_cap,
        loader,
        dir,
        metrics,
        defaults,
    };

    for path in &restore {
        if st.restore(path).is_err() {
            ShardMetrics::add(&st.metrics.checkpoint_failures, 1);
        }
    }
    ShardMetrics::set(&st.metrics.open_streams, st.streams.len() as u64);

    while let Ok(cmd) = rx.recv() {
        match cmd {
            Command::Open {
                stream,
                model,
                reply,
            } => {
                let mut open_span = obs::span("shard-open");
                open_span.add_field("stream", &stream);
                let result = if st.streams.contains_key(&stream) {
                    Err(StreamError::DuplicateStream(stream))
                } else {
                    st.model(&model).map(|fitted| {
                        let engine = StreamEngine::new(&fitted, st.defaults.clone());
                        st.streams.insert(
                            stream,
                            OpenStream {
                                engine,
                                model,
                                saved: None,
                            },
                        );
                        ShardMetrics::set(&st.metrics.open_streams, st.streams.len() as u64);
                    })
                };
                let _ = reply.send(result);
            }
            Command::Push { stream, points } => {
                // Unknown stream: the points were already counted as
                // ingested at enqueue time; without an engine they can only
                // be dropped. Poll/close on the name reports UnknownStream.
                let Some(model_name) = st.streams.get(&stream).map(|o| o.model.clone()) else {
                    continue;
                };
                // Reload on cache miss (the LRU cap may have evicted the
                // model); only an actual loader failure drops the batch.
                let Ok(fitted) = st.model(&model_name) else {
                    continue;
                };
                let Some(open) = st.streams.get_mut(&stream) else {
                    continue;
                };
                let mut ingest_span = obs::span("shard-ingest");
                ingest_span.add_field("stream", &stream);
                ingest_span.add_field("points", points.len());
                let events_before = open.engine.events().len();
                for &x in &points {
                    let t0 = obs::now_ns();
                    match open.engine.push(&fitted, x) {
                        Ok(outcome) => {
                            if outcome.completed_window.is_some() {
                                let end = obs::now_ns();
                                ShardMetrics::add(&st.metrics.windows_scored, 1);
                                st.metrics.score_latency_us.observe((end - t0) / 1_000);
                                // A completed window ran the stage-1 scorer:
                                // that interval (not every cheap buffering
                                // push) is the span worth attributing.
                                obs::record_span("shard-score", t0, end, Vec::new());
                            }
                        }
                        Err(_) => ShardMetrics::add(&st.metrics.dropped_nonfinite, 1),
                    }
                }
                let opened = open.engine.events().len().saturating_sub(events_before);
                ShardMetrics::add(&st.metrics.events_opened, opened as u64);
            }
            Command::Poll { stream, reply } => {
                let result = st
                    .streams
                    .get(&stream)
                    .map(|open| open.engine.status())
                    .ok_or(StreamError::UnknownStream(stream));
                let _ = reply.send(result);
            }
            Command::Close { stream, reply } => {
                let result = match st.streams.remove(&stream) {
                    None => Err(StreamError::UnknownStream(stream)),
                    Some(open) => {
                        ShardMetrics::set(&st.metrics.open_streams, st.streams.len() as u64);
                        let status = open.engine.status();
                        let (detection, finalize_error) = match st.model(&open.model) {
                            Err(e) => (None, Some(e.to_string())),
                            Ok(fitted) => match open.engine.finalize(&fitted) {
                                Ok(det) => (Some(det), None),
                                Err(e) => (None, Some(e.to_string())),
                            },
                        };
                        if let Some(path) = st.ckpt_path(&stream) {
                            let _ = std::fs::remove_file(path);
                        }
                        Ok(CloseReport {
                            status,
                            detection,
                            finalize_error,
                        })
                    }
                };
                let _ = reply.send(result);
            }
            Command::Checkpoint { stream, reply } => {
                let result = match stream {
                    // An explicitly named stream is always written, clean or
                    // not — the caller asked for a fresh file on disk.
                    Some(name) => st.checkpoint_stream(&name).map(|()| {
                        ShardMetrics::add(&st.metrics.checkpoints_written, 1);
                        1
                    }),
                    None => {
                        let (written, first_err) = st.checkpoint_all();
                        match first_err {
                            Some(e) if written == 0 && !st.streams.is_empty() => Err(e),
                            _ => Ok(written),
                        }
                    }
                };
                let _ = reply.send(result);
            }
            Command::List { reply } => {
                let _ = reply.send(st.streams.keys().cloned().collect());
            }
            Command::Shutdown => {
                if st.dir.is_some() {
                    // Dirty streams only: anything checkpointed since its
                    // last sample is already bit-identical on disk.
                    let _ = st.checkpoint_all();
                }
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{anomalous_test, periodic, quick_cfg};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;
    use triad_core::TriAd;

    /// Loader that fits a small model on the shard thread; counts calls so
    /// tests can assert the per-shard cache works. A model named `slow-*`
    /// sleeps first (used to wedge a worker for backpressure tests).
    fn counting_loader(calls: Arc<AtomicUsize>) -> ModelLoader {
        Arc::new(move |name: &str| {
            calls.fetch_add(1, Ordering::SeqCst);
            if name.starts_with("slow") {
                std::thread::sleep(Duration::from_millis(400));
            }
            TriAd::new(quick_cfg())
                .fit(&periodic(560, 32.0))
                .map_err(|e| e.to_string())
        })
    }

    fn wait_for_seq(mgr: &StreamManager, stream: &str, want: u64) -> StreamStatus {
        for _ in 0..600 {
            let status = mgr.poll(stream).expect("poll");
            if status.seq >= want {
                return status;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        panic!("stream {stream} never reached seq {want}");
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("triad_stream_shard_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    #[test]
    fn open_push_poll_close_across_shards_matches_offline() {
        let calls = Arc::new(AtomicUsize::new(0));
        let mgr = StreamManager::new(
            ManagerConfig {
                shards: 2,
                queue_capacity: 256,
                ..Default::default()
            },
            counting_loader(Arc::clone(&calls)),
        );
        assert_eq!(mgr.shard_count(), 2);

        let test = anomalous_test(380, 32.0);
        mgr.open("alpha", "m").expect("open alpha");
        mgr.open("beta", "m").expect("open beta");
        assert!(matches!(
            mgr.open("alpha", "m"),
            Err(StreamError::DuplicateStream(_))
        ));
        assert_eq!(mgr.streams(), vec!["alpha".to_string(), "beta".to_string()]);

        for chunk in test.chunks(40) {
            mgr.push("alpha", chunk).expect("push alpha");
            mgr.push("beta", chunk).expect("push beta");
        }
        let status = wait_for_seq(&mgr, "alpha", test.len() as u64);
        assert!(status.windows_scored > 0);
        wait_for_seq(&mgr, "beta", test.len() as u64);

        // Cache: at most one fit per shard that hosts a stream.
        assert!(calls.load(Ordering::SeqCst) <= 2);

        // Closing returns the offline-equivalent detection.
        let offline = TriAd::new(quick_cfg())
            .fit(&periodic(560, 32.0))
            .expect("fit")
            .detect(&test);
        for name in ["alpha", "beta"] {
            let report = mgr.close(name).expect("close");
            assert_eq!(report.finalize_error, None);
            assert_eq!(report.detection.as_ref(), Some(&offline), "stream {name}");
        }
        assert!(matches!(
            mgr.poll("alpha"),
            Err(StreamError::UnknownStream(_))
        ));
        let scored: u64 = mgr
            .shard_metrics()
            .iter()
            .map(|m| ShardMetrics::get(&m.windows_scored))
            .sum();
        assert!(scored > 0);
    }

    #[test]
    fn invalid_names_are_rejected_before_touching_a_shard() {
        let mgr = StreamManager::new(
            ManagerConfig {
                shards: 1,
                ..Default::default()
            },
            counting_loader(Arc::new(AtomicUsize::new(0))),
        );
        for bad in ["", ".hidden", "-flag", "a b", "x/y", "..", &"z".repeat(65)] {
            assert!(
                matches!(mgr.open(bad, "m"), Err(StreamError::BadName(_))),
                "accepted {bad:?}"
            );
        }
        assert!(matches!(
            mgr.push("no/pe", &[1.0]),
            Err(StreamError::BadName(_))
        ));
    }

    #[test]
    fn full_queue_sheds_load_and_accounts_drops() {
        let calls = Arc::new(AtomicUsize::new(0));
        let mgr = Arc::new(StreamManager::new(
            ManagerConfig {
                shards: 1,
                queue_capacity: 1,
                ..Default::default()
            },
            counting_loader(Arc::clone(&calls)),
        ));

        // Wedge the single worker in a slow model load…
        let mgr2 = Arc::clone(&mgr);
        let opener = std::thread::spawn(move || mgr2.open("wedge", "slow-m"));
        std::thread::sleep(Duration::from_millis(100));

        // …so pushes pile into the depth-1 queue: the first is queued, the
        // rest are shed with explicit accounting.
        let mut dropped = 0usize;
        let mut queued = 0usize;
        for _ in 0..8 {
            let ticket = mgr.push("wedge", &[1.0, 2.0, 3.0]).expect("push");
            assert_eq!(ticket.shard, 0);
            if ticket.queued {
                queued += 1;
            } else {
                assert_eq!(ticket.dropped, 3);
                dropped += ticket.dropped;
            }
        }
        assert!(queued >= 1);
        assert!(dropped > 0, "queue never filled");
        assert_eq!(
            ShardMetrics::get(&mgr.shard_metrics()[0].dropped_backpressure),
            dropped as u64
        );
        opener.join().expect("join").expect("open");
    }

    #[test]
    fn checkpoint_restart_restores_streams_bit_identically() {
        let dir = temp_dir("restore");
        let calls = Arc::new(AtomicUsize::new(0));
        let cfg = ManagerConfig {
            shards: 2,
            queue_capacity: 256,
            checkpoint_dir: Some(dir.clone()),
            ..Default::default()
        };
        let test = anomalous_test(380, 32.0);
        let cut = 201; // deliberately off-stride

        let first = StreamManager::new(cfg.clone(), counting_loader(Arc::clone(&calls)));
        first.open("gamma", "m").expect("open");
        first.push("gamma", &test[..cut]).expect("push");
        let before = wait_for_seq(&first, "gamma", cut as u64);
        assert_eq!(first.checkpoint(Some("gamma")).expect("checkpoint"), 1);
        // Kill the manager (Drop checkpoints again on shutdown).
        drop(first);
        assert!(dir.join("gamma.ckpt").exists());

        // A new manager over the same directory resumes mid-stream.
        let second = StreamManager::new(cfg, counting_loader(Arc::clone(&calls)));
        let after = second.poll("gamma").expect("restored stream");
        assert_eq!(after, before);

        second.push("gamma", &test[cut..]).expect("push rest");
        wait_for_seq(&second, "gamma", test.len() as u64);
        let report = second.close("gamma").expect("close");
        assert_eq!(report.finalize_error, None);

        // Offline ground truth over the whole series: the restart is
        // invisible in the final detection.
        let offline = TriAd::new(quick_cfg())
            .fit(&periodic(560, 32.0))
            .expect("fit")
            .detect(&test);
        assert_eq!(report.detection, Some(offline));
        // close() removed the checkpoint file.
        assert!(!dir.join("gamma.ckpt").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_checkpoint_counts_as_failure_and_startup_survives() {
        let dir = temp_dir("corrupt");
        std::fs::write(dir.join("broken.ckpt"), b"not a checkpoint").expect("write");
        let mgr = StreamManager::new(
            ManagerConfig {
                shards: 1,
                checkpoint_dir: Some(dir.clone()),
                ..Default::default()
            },
            counting_loader(Arc::new(AtomicUsize::new(0))),
        );
        assert!(mgr.streams().is_empty());
        assert_eq!(
            ShardMetrics::get(&mgr.shard_metrics()[0].checkpoint_failures),
            1
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
