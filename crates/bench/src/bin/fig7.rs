//! Fig. 7 — ratio of the anomaly-search length required by plain MERLIN
//! (the whole test split) to TriAD's padded-window search region, per
//! dataset. The paper reports an average ratio of ~20x.

use bench::{print_series, Args};
use ucrgen::archive::{generate_archive, ArchiveConfig};

fn main() {
    let args = Args::parse();
    let count: usize = args.get("datasets", 250);
    // Real UCR test splits run to hundreds of periods; our synthetic default
    // is 18-28. --test-periods 100 (say) reproduces the paper's ~20x ratio.
    let tp: usize = args.get("test-periods", 0);
    let mut cfg = ArchiveConfig {
        count,
        ..Default::default()
    };
    if tp > 0 {
        cfg.test_periods = (tp, tp + tp / 2);
    }
    let archive = generate_archive(7, &cfg);

    // The search region is (1 + 2·pad) windows where window = 2.5 periods;
    // MERLIN must scan the whole test split. The ratio is a property of the
    // segmentation, so it can be computed without training.
    let mut ratios: Vec<(f64, f64)> = Vec::new();
    let mut sum = 0.0;
    for (i, ds) in archive.iter().enumerate() {
        let window = ((ds.period as f64) * 2.5).ceil();
        let region = window * 3.0; // selected window + one window padding each side
        let ratio = ds.test().len() as f64 / region;
        sum += ratio;
        ratios.push((i as f64 + 1.0, ratio));
    }
    println!(
        "# Fig. 7 — mean search-length ratio MERLIN/TriAD over {} datasets: {:.1}x",
        archive.len(),
        sum / archive.len() as f64
    );
    println!("# (paper: ~20x on real UCR; our generated test splits are shorter — see DESIGN.md)");
    print_series("Fig7 per-dataset ratio", "dataset", "ratio", &ratios);
}
