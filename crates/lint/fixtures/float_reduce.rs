//@ path: crates/core/src/fixture.rs
//@ expect: float-reduce-order
// Seeded violation: two unordered float accumulations inside parallel
// closures — a turbofish `.sum()` and a `+=` loop. Both must route through
// parallel::reduce::* so the reduction order is written down.
pub fn row_sums(par: parallel::Parallelism, rows: &[Vec<f64>]) -> Vec<f64> {
    parallel::map_indexed(par, rows, |_, r| r.iter().sum::<f64>())
}

pub fn row_totals(par: parallel::Parallelism, rows: &[Vec<f64>]) -> Vec<f64> {
    parallel::map_indexed(par, rows, |_, r| {
        let mut acc = 0.0;
        for x in r {
            acc += x;
        }
        acc
    })
}
