//! The detector roster: TriAD (plus its stride variants) and every
//! `baselines::Detector`, run under one protocol.
//!
//! Baselines follow the deployment thresholding of Table II — threshold =
//! mean + 3σ of the detector's scores over its own (normal) training split,
//! no test labels consulted — and their raw test scores feed the
//! threshold-free AUC columns. TriAD emits binary predictions directly
//! (Eq. 8 voting); its vote totals serve as scores.
//!
//! Fitted TriAD models are cached through the `triad-serve` model registry:
//! the cache key encodes everything that determines the fit (config tag,
//! stride, seed, epochs, dataset), so a resumed or repeated run loads the
//! TRIAD2 file — bit-identical to the original fit by the persist
//! round-trip contract — instead of training again.

use baselines::anomaly_transformer_lite::{AnomalyTransformerConfig, AnomalyTransformerLite};
use baselines::dcdetector_lite::{DcDetectorConfig, DcDetectorLite};
use baselines::lstm_ae::{LstmAe, LstmAeConfig};
use baselines::mtgflow_lite::{MtgFlowConfig, MtgFlowLite};
use baselines::random::RandomDetector;
use baselines::ts2vec_lite::{Ts2VecConfig, Ts2VecLite};
use baselines::usad::{Usad, UsadConfig};
use baselines::Detector;
use std::sync::{Arc, RwLock};
use triad_core::{NumericMode, TriAd, TriadConfig};
use triad_serve::ModelRegistry;
use ucrgen::UcrDataset;

/// Every method the testbed knows, in canonical execution order (TriAD
/// first, then the Table III baselines, then the random floor).
pub const ALL_METHODS: [&str; 9] = [
    "triad",
    "lstm_ae_random",
    "lstm_ae",
    "usad",
    "ts2vec",
    "anomaly_transformer",
    "mtgflow",
    "dcdetector",
    "random",
];

/// TriAD stride variants for the windowing sweep (`--stride-sweep`): the
/// suffix is the inference/training stride as a percent of the window
/// (the paper's default grid is L/4 = 25%).
pub const STRIDE_VARIANTS: [(&str, f64); 2] = [("triad-s50", 0.50), ("triad-s100", 1.00)];

/// Is `name` a method this build can run?
pub fn is_known(name: &str) -> bool {
    ALL_METHODS.contains(&name) || STRIDE_VARIANTS.iter().any(|(n, _)| *n == name)
}

/// Validate a `--methods` list.
pub fn validate(names: &[String]) -> Result<(), String> {
    for n in names {
        if !is_known(n) {
            let variants: Vec<&str> = STRIDE_VARIANTS.iter().map(|(n, _)| *n).collect();
            return Err(format!(
                "unknown method {n:?} (expected one of {ALL_METHODS:?} or {variants:?})"
            ));
        }
    }
    Ok(())
}

/// Everything a method run yields on one dataset.
pub struct MethodOutput {
    /// One anomaly score per test point (higher = more anomalous).
    pub scores: Vec<f64>,
    /// Binarised prediction per test point.
    pub pred: Vec<bool>,
    /// Whether a cached fitted model was reused instead of training.
    pub reused_model: bool,
}

/// Shared, thread-safe handle on the model cache (same sharing discipline
/// as `triad-serve`'s server: reads clone slot `Arc`s, writes install new
/// slots).
pub type SharedRegistry = Arc<RwLock<ModelRegistry>>;

/// Per-run knobs that determine a fit (and therefore the cache key).
#[derive(Debug, Clone)]
pub struct MethodConfig {
    /// CI-scale model sizes when set (the cache key records it).
    pub smoke: bool,
    pub epochs: usize,
    pub seed: u64,
    /// Numeric kernel mode for TriAD detection. Deliberately NOT part of
    /// the cache key: fitting never runs the discord kernels, so a model
    /// fitted under either mode is the same model — only `detect` differs,
    /// and only within tolerance.
    pub numeric_mode: NumericMode,
}

impl MethodConfig {
    fn triad_config(&self, stride_frac: f64) -> TriadConfig {
        let base = if self.smoke {
            TriadConfig {
                epochs: self.epochs,
                depth: 2,
                hidden: 8,
                batch: 4,
                merlin_step: 4,
                seed: self.seed,
                ..TriadConfig::default()
            }
        } else {
            TriadConfig {
                epochs: self.epochs,
                merlin_step: 2,
                seed: self.seed,
                ..TriadConfig::default()
            }
        };
        TriadConfig {
            stride_frac,
            numeric_mode: self.numeric_mode,
            ..base
        }
    }

    /// Registry-safe cache key: `[A-Za-z0-9_.-]`, well under 64 chars.
    fn model_name(&self, method: &str, dataset: usize) -> String {
        let tag = if self.smoke { "q" } else { "f" };
        format!(
            "eb-{tag}-{method}-e{}-s{}-d{dataset:03}",
            self.epochs, self.seed
        )
    }
}

/// Stride fraction for a TriAD method name (`None` for baselines).
fn triad_stride(method: &str) -> Option<f64> {
    if method == "triad" {
        return Some(TriadConfig::default().stride_frac);
    }
    STRIDE_VARIANTS
        .iter()
        .find(|(n, _)| *n == method)
        .map(|&(_, s)| s)
}

/// Run one method on one dataset. TriAD consults (and feeds) the model
/// cache when a registry is provided; baselines are cheap enough to always
/// run and have no persisted format.
pub fn run_method(
    method: &str,
    ds: &UcrDataset,
    cfg: &MethodConfig,
    registry: Option<&SharedRegistry>,
) -> Result<MethodOutput, String> {
    match triad_stride(method) {
        Some(stride) => run_triad(method, stride, ds, cfg, registry),
        None => run_baseline(method, ds, cfg),
    }
}

fn run_triad(
    method: &str,
    stride_frac: f64,
    ds: &UcrDataset,
    cfg: &MethodConfig,
    registry: Option<&SharedRegistry>,
) -> Result<MethodOutput, String> {
    let name = cfg.model_name(method, ds.id);

    // Cache hit: load (or reuse the live instance of) the fitted model.
    if let Some(reg) = registry {
        let slot = reg
            .read()
            .map_err(|_| "model registry poisoned")?
            .slot(&name);
        if let Some(slot) = slot {
            let det = {
                let guard = reg.read().map_err(|_| "model registry poisoned")?;
                let loaded = guard.lock_loaded(&slot)?;
                let model = loaded.as_ref().ok_or("cached model slot empty")?;
                model.detect(ds.test())
            };
            return Ok(MethodOutput {
                scores: det.votes.clone(),
                pred: det.prediction,
                reused_model: true,
            });
        }
    }

    // Cache miss: fit, detect, then persist the fit for future runs.
    let fitted = TriAd::new(cfg.triad_config(stride_frac)).fit(ds.train())?;
    let det = fitted.detect(ds.test());
    if let Some(reg) = registry {
        reg.write()
            .map_err(|_| "model registry poisoned")?
            .save_fitted(&name, fitted)?;
    }
    Ok(MethodOutput {
        scores: det.votes.clone(),
        pred: det.prediction,
        reused_model: false,
    })
}

/// Fresh detector per scoring pass so the train/test passes are independent
/// and deterministic (the Table II protocol).
fn make_baseline(method: &str, cfg: &MethodConfig) -> Result<Box<dyn Detector>, String> {
    let epochs = cfg.epochs;
    let seed = cfg.seed;
    Ok(match method {
        "lstm_ae_random" => Box::new(LstmAe::random(LstmAeConfig {
            epochs,
            seed,
            ..Default::default()
        })),
        "lstm_ae" => Box::new(LstmAe::trained(LstmAeConfig {
            epochs,
            seed,
            ..Default::default()
        })),
        "usad" => Box::new(Usad::new(UsadConfig {
            epochs,
            seed,
            ..Default::default()
        })),
        "ts2vec" => Box::new(Ts2VecLite::new(Ts2VecConfig {
            epochs,
            seed,
            ..Default::default()
        })),
        "anomaly_transformer" => Box::new(AnomalyTransformerLite::new(AnomalyTransformerConfig {
            epochs,
            seed,
            ..Default::default()
        })),
        "mtgflow" => Box::new(MtgFlowLite::new(MtgFlowConfig {
            epochs,
            seed,
            ..Default::default()
        })),
        "dcdetector" => Box::new(DcDetectorLite::new(DcDetectorConfig {
            epochs,
            seed,
            ..Default::default()
        })),
        "random" => Box::new(RandomDetector::new(seed)),
        other => return Err(format!("unknown baseline {other:?}")),
    })
}

fn run_baseline(method: &str, ds: &UcrDataset, cfg: &MethodConfig) -> Result<MethodOutput, String> {
    let test_scores = make_baseline(method, cfg)?.score(ds.train(), ds.test());
    let train_scores = make_baseline(method, cfg)?.score(ds.train(), ds.train());
    let n = train_scores.len().max(1) as f64;
    let mean = train_scores.iter().sum::<f64>() / n;
    let var = train_scores
        .iter()
        .map(|s| (s - mean) * (s - mean))
        .sum::<f64>()
        / n;
    let thr = mean + 3.0 * var.sqrt();
    let pred = evalkit::threshold::apply(&test_scores, thr);
    Ok(MethodOutput {
        scores: test_scores,
        pred,
        reused_model: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucrgen::archive::generate_dataset;

    #[test]
    fn method_validation() {
        assert!(validate(&["triad".into(), "usad".into(), "triad-s50".into()]).is_ok());
        assert!(validate(&["bogus".into()]).is_err());
        assert!(is_known("triad-s100"));
        assert!(!is_known("triad-s12"));
    }

    #[test]
    fn baselines_emit_full_length_scores() {
        let ds = generate_dataset(7, 2);
        let cfg = MethodConfig {
            smoke: true,
            epochs: 1,
            seed: 0,
            numeric_mode: NumericMode::Exact,
        };
        for method in ["lstm_ae_random", "random"] {
            let out = run_method(method, &ds, &cfg, None).expect(method);
            assert_eq!(out.scores.len(), ds.test().len(), "{method}");
            assert_eq!(out.pred.len(), ds.test().len(), "{method}");
            assert!(!out.reused_model);
        }
    }

    #[test]
    fn baseline_runs_are_deterministic() {
        let ds = generate_dataset(7, 3);
        let cfg = MethodConfig {
            smoke: true,
            epochs: 1,
            seed: 1,
            numeric_mode: NumericMode::Exact,
        };
        let a = run_baseline("random", &ds, &cfg).expect("a");
        let b = run_baseline("random", &ds, &cfg).expect("b");
        assert_eq!(a.scores, b.scores);
        assert_eq!(a.pred, b.pred);
    }
}
