//! triad-evalbed: the archive-scale evaluation testbed.
//!
//! Runs {TriAD + every `baselines::Detector`} × the synthetic UCR archive
//! × the full `evalkit` metric suite as a deterministic work queue over
//! `crates/parallel`, with:
//!
//! - **bit-identical results at any thread count** — scheduling order,
//!   append order and aggregation order are fixed by the task list;
//! - **crash-resumable output** — append-only JSONL rows, each carrying its
//!   own CRC-32, so `--resume` re-runs exactly the tasks whose rows did not
//!   land intact ([`rows`]);
//! - **model caching** — fitted TriAD models persist through the
//!   `triad-serve` registry, so re-runs and resumes skip training
//!   ([`methods`]);
//! - **a CI regression gate** — the canonical summary
//!   (`EVALBED_summary.json`) is diffed against a committed baseline:
//!   ranking flips and metric drops beyond tolerance fail the build
//!   ([`summary`]).
//!
//! The CLI front end is `triad evalbed` (see `crates/cli`).

#![forbid(unsafe_code)]

pub mod engine;
pub mod methods;
pub mod metrics;
pub mod rows;
pub mod summary;

pub use engine::{run, EvalbedOptions, RunOutcome};
pub use metrics::{HEADLINE, METRIC_NAMES};
pub use rows::{load_rows, ResultRow, SCHEMA_VERSION};
pub use summary::{compare, Summary};

/// Parse a `--datasets` spec: comma-separated ids and inclusive ranges,
/// e.g. `"1-10,40,45-50"`. Ids are 1-based archive numbers; the result is
/// sorted and deduplicated.
pub fn parse_dataset_spec(spec: &str, max: usize) -> Result<Vec<usize>, String> {
    let mut ids = Vec::new();
    for part in spec.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (lo, hi) = match part.split_once('-') {
            Some((a, b)) => (
                a.trim()
                    .parse::<usize>()
                    .map_err(|_| format!("bad dataset range start {a:?}"))?,
                b.trim()
                    .parse::<usize>()
                    .map_err(|_| format!("bad dataset range end {b:?}"))?,
            ),
            None => {
                let id = part
                    .parse::<usize>()
                    .map_err(|_| format!("bad dataset id {part:?}"))?;
                (id, id)
            }
        };
        if lo == 0 || hi < lo || hi > max {
            return Err(format!(
                "dataset range {part:?} out of bounds (valid ids are 1-{max})"
            ));
        }
        ids.extend(lo..=hi);
    }
    ids.sort_unstable();
    ids.dedup();
    if ids.is_empty() {
        return Err(format!("empty dataset spec {spec:?}"));
    }
    Ok(ids)
}

/// Parse a comma-separated name list (`--methods`, `--metrics`).
pub fn parse_name_list(spec: &str) -> Vec<String> {
    spec.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_spec_parsing() {
        assert_eq!(
            parse_dataset_spec("1-3,7", 250).as_deref(),
            Ok(&[1, 2, 3, 7][..])
        );
        assert_eq!(
            parse_dataset_spec("5,3,4-5", 250).as_deref(),
            Ok(&[3, 4, 5][..])
        );
        assert!(parse_dataset_spec("0", 250).is_err());
        assert!(parse_dataset_spec("5-3", 250).is_err());
        assert!(parse_dataset_spec("251", 250).is_err());
        assert!(parse_dataset_spec("", 250).is_err());
        assert!(parse_dataset_spec("x", 250).is_err());
    }

    #[test]
    fn name_list_parsing() {
        assert_eq!(
            parse_name_list("triad, usad,"),
            vec!["triad".to_string(), "usad".to_string()]
        );
        assert!(parse_name_list("").is_empty());
    }
}
