//! Minimal pure-Rust neural-network substrate for the TriAD reproduction.
//!
//! The original paper trains its encoders in PyTorch; this crate replaces that
//! dependency with a small, deterministic, CPU-only stack:
//!
//! * [`tensor`] — dense row-major `f32` tensors with shape bookkeeping.
//! * [`graph`] — a tape-based reverse-mode autodiff graph. Each forward pass
//!   builds a fresh tape; `backward` walks it in reverse creation order and
//!   flushes gradients into persistent [`graph::Param`]s.
//! * [`layers`] — the layers the paper and its baselines need: `Linear`,
//!   dilated same-padding `Conv1d`, the residual block of Sec. III-B, `Lstm`
//!   (LSTM-AE baseline), single-head self-attention (Anomaly-Transformer-lite,
//!   DCdetector-lite) and RealNVP affine coupling (MTGFlow-lite).
//! * [`optim`] — Adam and SGD.
//! * [`init`] — seeded He/Xavier initialisers, so every experiment is exactly
//!   reproducible from a `u64` seed.
//!
//! Design notes: tensors are plain values (no views); the tape stores one
//! closure per op; parameters live outside the tape in `Rc<RefCell<…>>` cells
//! so a fresh graph per batch is cheap. Model sizes in this reproduction
//! (≤ 6 residual blocks, hidden dim ≤ 128, windows ≤ ~1000 samples) train in
//! seconds per dataset on one core.

#![forbid(unsafe_code)]

pub mod graph;
pub mod init;
pub mod layers;
pub mod optim;
pub mod sanitize;
pub mod serialize;
pub mod tensor;

pub use graph::{Graph, NodeId, Param};
pub use tensor::Tensor;
