//@ path: crates/core/src/fixture.rs
//@ expect: no-unwrap
// Seeded violations: force-unwraps in library code.
pub fn first(xs: &[u32]) -> u32 {
    xs.first().copied().unwrap()
}

pub fn parse(s: &str) -> u32 {
    s.parse().expect("not a number")
}
