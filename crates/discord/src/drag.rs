//! DRAG — Discord Range-Aware Gathering (Yankov, Keogh & Rebbapragada 2008).
//!
//! Given a range `r`, DRAG finds **every** subsequence whose nearest-neighbour
//! distance is at least `r`, in two phases:
//!
//! 1. **Candidate selection** — one forward scan keeping a candidate set; a
//!    subsequence evicts every candidate it lies within `r` of (both then
//!    provably have a neighbour closer than `r`), and joins the set itself
//!    only if it evicted nothing.
//! 2. **Refinement** — each surviving candidate's true nearest-neighbour
//!    distance is computed with early-abandoning; a candidate is dropped the
//!    moment its running NN distance falls below `r`.
//!
//! An empty result means *no* discord has NN distance ≥ `r` — the caller
//! (MERLIN) must retry with a smaller `r`.

use crate::Discord;
use tsops::distance::ZnormSeries;

/// Run DRAG at subsequence length `w` with range `r`. Returns all discords
/// with nearest-neighbour distance ≥ `r`, sorted by descending distance.
pub fn drag(series: &[f64], w: usize, r: f64) -> Vec<Discord> {
    let zs = ZnormSeries::new(series, w);
    drag_prepared(&zs, r)
}

/// DRAG over an already-prepared [`ZnormSeries`] (lets MERLIN reuse the
/// rolling statistics across `r` retries at the same length).
pub fn drag_prepared(zs: &ZnormSeries<'_>, r: f64) -> Vec<Discord> {
    let n = zs.count();
    let w = zs.subseq_len();
    if n == 0 {
        return Vec::new();
    }
    let r_sq = r * r;

    // Phase 1: candidate selection.
    let mut candidates: Vec<usize> = vec![0];
    for j in 1..n {
        let mut is_candidate = true;
        let mut kept = Vec::with_capacity(candidates.len());
        for &c in &candidates {
            if j.abs_diff(c) < w {
                kept.push(c); // trivial match: no evidence either way
                continue;
            }
            if zs.dist_sq(c, j) < r_sq {
                // c has a neighbour within r → not a discord; j has one too.
                is_candidate = false;
            } else {
                kept.push(c);
            }
        }
        candidates = kept;
        if is_candidate {
            candidates.push(j);
        }
    }

    // Phase 2: refinement with early abandoning.
    let mut out = Vec::new();
    for &c in &candidates {
        let mut best = f64::INFINITY;
        let mut alive = true;
        for j in 0..n {
            if j.abs_diff(c) < w {
                continue;
            }
            let bound = best.min(f64::INFINITY);
            if let Some(d) = zs.dist_early_abandon(c, j, bound) {
                if d < best {
                    best = d;
                    if best < r {
                        alive = false;
                        break;
                    }
                }
            }
        }
        if alive && best.is_finite() && best >= r {
            out.push(Discord {
                index: c,
                length: w,
                distance: best,
            });
        }
    }
    out.sort_by(|a, b| b.distance.total_cmp(&a.distance));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix_profile::matrix_profile;
    use std::f64::consts::PI;

    fn spiked(n: usize, p: usize, at: usize) -> Vec<f64> {
        let mut x: Vec<f64> = (0..n)
            .map(|i| (2.0 * PI * i as f64 / p as f64).sin())
            .collect();
        for (k, v) in x[at..at + 5].iter_mut().enumerate() {
            *v += 1.5 + 0.4 * k as f64;
        }
        x
    }

    #[test]
    fn drag_top_discord_matches_brute_force() {
        let x = spiked(350, 25, 170);
        let w = 25;
        let mp = matrix_profile(&x, w);
        let truth = mp.top_discord().unwrap();
        // r slightly below the true top distance must recover it.
        let found = drag(&x, w, truth.distance * 0.9);
        assert!(!found.is_empty());
        assert_eq!(found[0].index, truth.index);
        assert!((found[0].distance - truth.distance).abs() < 1e-9);
    }

    #[test]
    fn drag_fails_cleanly_when_r_too_large() {
        let x = spiked(300, 20, 140);
        let mp = matrix_profile(&x, 20);
        let truth = mp.top_discord().unwrap();
        let found = drag(&x, 20, truth.distance * 1.5);
        assert!(found.is_empty());
    }

    #[test]
    fn drag_finds_all_discords_above_r() {
        let x = spiked(400, 20, 200);
        let w = 20;
        let mp = matrix_profile(&x, w);
        let r = 1.0;
        let expected: Vec<usize> = mp
            .profile
            .iter()
            .enumerate()
            .filter(|(_, d)| d.is_finite() && **d >= r)
            .map(|(i, _)| i)
            .collect();
        let mut found: Vec<usize> = drag(&x, w, r).into_iter().map(|d| d.index).collect();
        found.sort_unstable();
        assert_eq!(found, expected);
    }

    #[test]
    fn drag_results_sorted_descending() {
        let mut x = spiked(500, 25, 100);
        for v in &mut x[350..356] {
            *v -= 2.0;
        }
        let ds = drag(&x, 25, 0.5);
        for pair in ds.windows(2) {
            assert!(pair[0].distance >= pair[1].distance);
        }
    }

    #[test]
    fn drag_empty_and_tiny_inputs() {
        assert!(drag(&[1.0, 2.0], 2, 0.1).is_empty() || drag(&[1.0, 2.0], 2, 0.1).len() <= 1);
        let x = vec![0.0; 10];
        // All-constant series: all distances 0 < r → no discords.
        assert!(drag(&x, 3, 0.5).is_empty());
    }
}
