#!/usr/bin/env bash
# Tier-1 gate: formatting, release build, full test suite.
# Run from anywhere; it cds to the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo build --release"
cargo build --workspace --release

echo "== cargo test"
cargo test --workspace -q

echo "== stream soak (high-rate replay, kill-and-restore mid-run)"
cargo test --release -q --test stream_soak -- --ignored

echo "== triad-lint --deny (workspace must be clean)"
cargo run -q -p triad-lint -- --deny

echo "== triad-lint --fixture (every rule must fire on the seeded fixtures)"
cargo run -q -p triad-lint -- --fixture

echo "== triad-lint --deny on fixtures (must be NONZERO: the rules still bite)"
if cargo run -q -p triad-lint -- --deny --root crates/lint/fixtures >/dev/null; then
    echo "ERROR: lint found nothing on the seeded fixtures" >&2
    exit 1
fi

echo "CI green."
