//! Affiliation precision / recall (Huet, Navarro & Rossi, KDD 2022) —
//! the paper's event-wise metric (Eq. 10).
//!
//! Idea: score *temporal distances* between predictions and events, not point
//! overlaps, and normalise each distance by what a **random** prediction in
//! the same neighbourhood would achieve, so trivial all-positive or
//! all-negative predictions cannot score well.
//!
//! Implementation follows the single-zone construction of the original:
//!
//! * the series is partitioned into *affiliation zones*, one per ground-truth
//!   event, split at midpoints between consecutive events (the whole series
//!   for a single event — the UCR case, as noted under Eq. 10);
//! * **precision**: each predicted point `y'` in zone `I_j` contributes
//!   `F̄(dist(y', A_j))`, the survival function of `dist(X, A_j)` for `X`
//!   uniform on `I_j` — 1 when the prediction touches the event, decaying to
//!   0 at the zone edge;
//! * **recall**: each event point `a` contributes `F̄(dist(a, Ŷ_j))`, the
//!   survival of `dist(a, X)` for `X` uniform on `I_j`, where `Ŷ_j` are the
//!   predictions inside the zone.
//!
//! Both are averaged over their sets; an event with no predictions in its
//! zone contributes 0 recall, and a prediction-free evaluation yields 0/0 → 0.

use crate::{harmonic, segments, Prf};
use std::ops::Range;

/// Survival probability `P(dist(X, [a,b)) ≥ t)` for `X` uniform on `[zl, zr)`.
fn survival_dist_to_event(t: f64, zone: &Range<usize>, event: &Range<usize>) -> f64 {
    if t <= 0.0 {
        return 1.0;
    }
    let (zl, zr) = (zone.start as f64, zone.end as f64);
    let (a, b) = (event.start as f64, event.end as f64);
    let z = (zr - zl).max(1e-12);
    // Points at distance ≥ t lie left of a−t or right of b−1+t (discrete
    // event end b is exclusive; use continuous approximation on [a, b)).
    let left = ((a - t) - zl).max(0.0);
    let right = (zr - (b + t)).max(0.0);
    ((left + right) / z).clamp(0.0, 1.0)
}

/// Survival probability `P(|X − a| ≥ t)` for `X` uniform on `[zl, zr)`.
fn survival_dist_to_point(t: f64, zone: &Range<usize>, a: usize) -> f64 {
    if t <= 0.0 {
        return 1.0;
    }
    let (zl, zr) = (zone.start as f64, zone.end as f64);
    let af = a as f64;
    let z = (zr - zl).max(1e-12);
    let left = ((af - t) - zl).max(0.0);
    let right = (zr - (af + t)).max(0.0);
    ((left + right) / z).clamp(0.0, 1.0)
}

/// Distance from a point to a half-open range (0 inside).
fn dist_point_range(i: usize, r: &Range<usize>) -> f64 {
    if r.contains(&i) {
        0.0
    } else if i < r.start {
        (r.start - i) as f64
    } else {
        (i + 1 - r.end) as f64
    }
}

/// Partition `0..n` into one affiliation zone per event, split at midpoints.
fn zones(events: &[Range<usize>], n: usize) -> Vec<Range<usize>> {
    let mut out = Vec::with_capacity(events.len());
    for (j, ev) in events.iter().enumerate() {
        let lo = if j == 0 {
            0
        } else {
            (events[j - 1].end + ev.start).div_ceil(2)
        };
        let hi = if j + 1 == events.len() {
            n
        } else {
            (ev.end + events[j + 1].start) / 2
        };
        out.push(lo..hi);
    }
    out
}

/// Affiliation precision / recall / F1 over boolean predictions and labels.
pub fn affiliation_prf(pred: &[bool], labels: &[bool]) -> Prf {
    assert_eq!(pred.len(), labels.len(), "prediction/label length mismatch");
    let events = segments(labels);
    if events.is_empty() {
        return Prf::default();
    }
    let zones = zones(&events, labels.len());

    let mut p_sum = 0.0;
    let mut p_cnt = 0usize;
    let mut r_sum = 0.0;
    let mut r_cnt = 0usize;

    for (ev, zone) in events.iter().zip(&zones) {
        // Predicted points inside this zone.
        let preds: Vec<usize> = zone.clone().filter(|&i| pred[i]).collect();

        // Precision contributions.
        for &y in &preds {
            let d = dist_point_range(y, ev);
            p_sum += survival_dist_to_event(d, zone, ev);
            p_cnt += 1;
        }

        // Recall contributions.
        for a in ev.clone() {
            let d = preds
                .iter()
                .map(|&y| (y as f64 - a as f64).abs())
                .fold(f64::INFINITY, f64::min);
            let contrib = if d.is_finite() {
                survival_dist_to_point(d, zone, a)
            } else {
                0.0
            };
            r_sum += contrib;
            r_cnt += 1;
        }
    }

    let precision = if p_cnt > 0 { p_sum / p_cnt as f64 } else { 0.0 };
    let recall = if r_cnt > 0 { r_sum / r_cnt as f64 } else { 0.0 };
    Prf {
        precision,
        recall,
        f1: harmonic(precision, recall),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels_with_event(n: usize, ev: Range<usize>) -> Vec<bool> {
        let mut l = vec![false; n];
        for i in ev {
            l[i] = true;
        }
        l
    }

    #[test]
    fn exact_prediction_scores_one() {
        let labels = labels_with_event(200, 80..120);
        let m = affiliation_prf(&labels, &labels);
        assert!(m.precision > 0.999, "{}", m.precision);
        assert!(m.recall > 0.9, "{}", m.recall); // event edges see half mass
        assert!(m.f1 > 0.94);
    }

    #[test]
    fn near_miss_beats_far_miss() {
        let labels = labels_with_event(400, 200..220);
        let mut near = vec![false; 400];
        for p in near[190..200].iter_mut() {
            *p = true;
        }
        let mut far = vec![false; 400];
        for p in far[0..10].iter_mut() {
            *p = true;
        }
        let mn = affiliation_prf(&near, &labels);
        let mf = affiliation_prf(&far, &labels);
        assert!(
            mn.precision > mf.precision,
            "{} vs {}",
            mn.precision,
            mf.precision
        );
        assert!(mn.recall > mf.recall);
        assert!(mn.f1 > mf.f1);
    }

    #[test]
    fn all_positive_prediction_has_mediocre_precision() {
        // The normalisation must punish a flag-everything detector.
        let labels = labels_with_event(500, 240..260);
        let pred = vec![true; 500];
        let m = affiliation_prf(&pred, &labels);
        assert!(m.recall > 0.99); // it does cover the event
        assert!(m.precision < 0.6, "precision {}", m.precision);
    }

    #[test]
    fn no_prediction_zero_scores() {
        let labels = labels_with_event(100, 40..50);
        let pred = vec![false; 100];
        let m = affiliation_prf(&pred, &labels);
        assert_eq!((m.precision, m.recall, m.f1), (0.0, 0.0, 0.0));
    }

    #[test]
    fn no_events_yields_default() {
        let m = affiliation_prf(&[true, false], &[false, false]);
        assert_eq!(m, Prf::default());
    }

    #[test]
    fn multi_event_zones_split_at_midpoints() {
        let evs = vec![10..20, 40..50];
        let z = zones(&evs, 100);
        assert_eq!(z, vec![0..30, 30..100]);
    }

    #[test]
    fn prediction_only_near_one_of_two_events_gets_partial_recall() {
        let mut labels = vec![false; 300];
        for i in 50..60 {
            labels[i] = true;
        }
        for i in 200..210 {
            labels[i] = true;
        }
        let mut pred = vec![false; 300];
        for p in pred[50..60].iter_mut() {
            *p = true;
        }
        let m = affiliation_prf(&pred, &labels);
        assert!(m.recall > 0.4 && m.recall < 0.6, "recall {}", m.recall);
        assert!(m.precision > 0.99);
    }

    #[test]
    fn survival_functions_are_monotone() {
        let zone = 0..100;
        let ev = 40..50;
        let mut last = 1.0;
        for t in 0..60 {
            let s = survival_dist_to_event(t as f64, &zone, &ev);
            assert!(s <= last + 1e-12);
            assert!((0.0..=1.0).contains(&s));
            last = s;
        }
        let mut last = 1.0;
        for t in 0..60 {
            let s = survival_dist_to_point(t as f64, &zone, 45);
            assert!(s <= last + 1e-12);
            last = s;
        }
    }
}
