//! CLI for `triad-lint`.
//!
//! ```text
//! triad-lint [--root DIR] [--json] [--deny] [--include-vendor]
//! triad-lint --fixture            # self-test on seeded-violation fixtures
//! triad-lint --list-rules         # print the rule catalog
//! ```
//!
//! Exit codes: 0 clean (or report-only), 1 diagnostics under `--deny` or a
//! failed fixture self-test, 2 usage/IO error.

use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: Option<PathBuf>,
    json: bool,
    deny: bool,
    fixture: bool,
    include_vendor: bool,
    list_rules: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        json: false,
        deny: false,
        fixture: false,
        include_vendor: false,
        list_rules: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => {
                let v = it.next().ok_or("--root requires a directory argument")?;
                args.root = Some(PathBuf::from(v));
            }
            "--json" => args.json = true,
            "--deny" => args.deny = true,
            "--fixture" => args.fixture = true,
            "--include-vendor" => args.include_vendor = true,
            "--list-rules" => args.list_rules = true,
            "--help" | "-h" => {
                println!(
                    "triad-lint: workspace static analysis for TriAD\n\n\
                     USAGE: triad-lint [--root DIR] [--json] [--deny] [--include-vendor]\n\
                            triad-lint --fixture\n\
                            triad-lint --list-rules\n\n\
                     --root DIR        lint DIR instead of the workspace root\n\
                     --json            machine-readable diagnostics on stdout\n\
                     --deny            exit 1 if any diagnostic is emitted\n\
                     --fixture         run the seeded-violation self-test\n\
                     --include-vendor  also lint vendor/ (skipped by default)\n\
                     --list-rules      print the rule catalog and exit"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{}` (try --help)", other)),
        }
    }
    Ok(args)
}

/// Workspace root: `--root` wins; otherwise the current directory if it has
/// a `Cargo.toml` (that is where `cargo run` puts us), otherwise the
/// compile-time manifest's grandparent (running the binary directly).
fn resolve_root(args: &Args) -> PathBuf {
    if let Some(r) = &args.root {
        return r.clone();
    }
    let cwd = PathBuf::from(".");
    if cwd.join("Cargo.toml").exists() && cwd.join("crates").exists() {
        return cwd;
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(|p| p.to_path_buf())
        .unwrap_or(cwd)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("triad-lint: {}", e);
            return ExitCode::from(2);
        }
    };

    if args.list_rules {
        for (id, desc) in triad_lint::RULES {
            println!("{:<16} {}", id, desc);
        }
        return ExitCode::SUCCESS;
    }

    if args.fixture {
        let root = resolve_root(&args);
        let dir = args
            .root
            .clone()
            .unwrap_or_else(|| root.join("crates/lint/fixtures"));
        return match triad_lint::fixture_self_test(&dir) {
            Ok(outcome) => {
                print!("{}", outcome.report);
                if outcome.passed {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::from(1)
                }
            }
            Err(e) => {
                eprintln!("triad-lint: fixture self-test failed to run: {}", e);
                ExitCode::from(2)
            }
        };
    }

    let root = resolve_root(&args);
    let opts = triad_lint::Options {
        include_vendor: args.include_vendor,
    };
    let reports = match triad_lint::run(&root, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("triad-lint: failed to lint {}: {}", root.display(), e);
            return ExitCode::from(2);
        }
    };
    let n: usize = reports.iter().map(|r| r.diagnostics.len()).sum();
    if args.json {
        print!("{}", triad_lint::engine::render_json(&reports));
    } else {
        print!("{}", triad_lint::engine::render_human(&reports));
    }
    if args.deny && n > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
