//! Fig. 5 — the paper's augmentation examples: one window, its jittered
//! variant (Eq. 3) and its warped variant (Eq. 4), with the altered segment
//! reported.

use bench::print_series;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tsaug::{augment_window, AugKind, AugmentConfig};

fn main() {
    let p = 50.0;
    let window: Vec<f64> = (0..250)
        .map(|i| {
            let t = i as f64;
            (2.0 * std::f64::consts::PI * t / p).sin()
                + 0.35 * (4.0 * std::f64::consts::PI * t / p).sin()
        })
        .collect();

    let cfg = AugmentConfig::default();
    // Draw seeds until both kinds are showcased.
    let mut shown = (false, false);
    let mut seed = 0u64;
    while !(shown.0 && shown.1) {
        let (aug, kind, range) = augment_window(&mut StdRng::seed_from_u64(seed), &window, &cfg);
        let fresh = match kind {
            AugKind::Jitter if !shown.0 => {
                shown.0 = true;
                true
            }
            AugKind::Warp if !shown.1 => {
                shown.1 = true;
                true
            }
            _ => false,
        };
        if fresh {
            println!("# Fig. 5 — {kind:?} on segment {range:?} (seed {seed})");
            let pts: Vec<(f64, f64)> = aug
                .iter()
                .enumerate()
                .map(|(i, &v)| (i as f64, v))
                .collect();
            print_series(&format!("Fig5 {kind:?}"), "t", "x", &pts);
        }
        seed += 1;
    }
    let pts: Vec<(f64, f64)> = window
        .iter()
        .enumerate()
        .map(|(i, &v)| (i as f64, v))
        .collect();
    print_series("Fig5 original", "t", "x", &pts);
}
