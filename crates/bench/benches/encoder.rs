//! Tri-domain encoder forward/backward cost at the paper's model size
//! (depth 6, h_d 32, batch 8) and smaller — the training-cost driver.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use neuro::graph::Graph;
use rand::rngs::StdRng;
use rand::SeedableRng;
use triad_core::encoder::{DomainEncoder, ProjectionHead};

fn bench_encoder(c: &mut Criterion) {
    let mut g = c.benchmark_group("encoder_fwd_bwd_b8");
    g.sample_size(10);
    for &(depth, hidden, l) in &[(3usize, 16usize, 100usize), (6, 32, 100), (6, 32, 250)] {
        let mut rng = StdRng::seed_from_u64(0);
        let enc = DomainEncoder::new(&mut rng, 1, hidden, depth, 3);
        let head = ProjectionHead::new(&mut rng, hidden);
        let x = neuro::init::he_normal(&mut rng, &[8, 1, l], l);
        let id = format!("d{depth}_h{hidden}_L{l}");
        g.bench_function(BenchmarkId::new("fwd", &id), |b| {
            b.iter(|| {
                let mut graph = Graph::new();
                let xin = graph.input(x.clone());
                let h = enc.forward(&mut graph, xin);
                head.forward(&mut graph, h)
            })
        });
        g.bench_function(BenchmarkId::new("fwd_bwd", &id), |b| {
            b.iter(|| {
                let mut graph = Graph::new();
                let xin = graph.input(x.clone());
                let h = enc.forward(&mut graph, xin);
                let r = head.forward(&mut graph, h);
                let sq = graph.square(r);
                let loss = graph.mean_all(sq);
                graph.backward(loss);
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(4)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_encoder
}
criterion_main!(benches);
