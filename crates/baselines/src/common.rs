//! Shared plumbing for the window-based baselines.

use tsops::window::{Segmenter, Windows};

/// Window policy shared with TriAD for comparability: L = 2.5 periods
/// (estimated from the training split), stride = L/4. Falls back to a fixed
/// window when no period is detectable.
pub fn make_segmenter(train: &[f64]) -> Segmenter {
    match tsops::decompose::estimate_period(train, train.len() / 2) {
        Some(p) => Segmenter::for_period(p),
        None => {
            let w = (train.len() / 8).clamp(16, 128);
            Segmenter::new(w, (w / 4).max(1))
        }
    }
}

/// Slice a series into z-normalised windows (most baselines operate on
/// normalised inputs).
pub fn znorm_windows(series: &[f64], seg: &Segmenter) -> (Windows, Vec<Vec<f64>>) {
    // Same clamping policy as `core::detect`: a series shorter than one
    // window is a single window, never zero windows.
    let windows = seg.segment_clamped(series.len());
    let slices = (0..windows.count())
        .map(|i| tsops::stats::znormalize(windows.slice(series, i)))
        .collect();
    (windows, slices)
}

/// Spread per-window, per-point scores back onto the series: each point's
/// score is the mean over all windows covering it.
pub fn scatter_pointwise(
    windows: &Windows,
    per_window: &[Vec<f64>],
    series_len: usize,
) -> Vec<f64> {
    let mut sum = vec![0.0f64; series_len];
    let mut cnt = vec![0u32; series_len];
    for (wi, scores) in per_window.iter().enumerate() {
        let r = windows.range(wi);
        for (offset, &s) in scores.iter().enumerate() {
            let t = r.start + offset;
            if t < series_len {
                sum[t] += s;
                cnt[t] += 1;
            }
        }
    }
    sum.iter()
        .zip(&cnt)
        .map(|(&s, &c)| if c > 0 { s / c as f64 } else { 0.0 })
        .collect()
}

/// Spread one scalar score per window onto the points it covers (mean over
/// covering windows).
pub fn scatter_window_scores(windows: &Windows, per_window: &[f64], series_len: usize) -> Vec<f64> {
    let expanded: Vec<Vec<f64>> = per_window.iter().map(|&s| vec![s; windows.len]).collect();
    scatter_pointwise(windows, &expanded, series_len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segmenter_uses_period_when_present() {
        let x: Vec<f64> = (0..600)
            .map(|i| (2.0 * std::f64::consts::PI * i as f64 / 30.0).sin())
            .collect();
        let s = make_segmenter(&x);
        assert_eq!(s.window, 75);
        assert_eq!(s.stride, 18);
    }

    #[test]
    fn segmenter_fallback_for_noise_like_input() {
        let x = vec![5.0; 400]; // constant: no detectable period
        let s = make_segmenter(&x);
        assert!(s.window >= 16 && s.window <= 128);
    }

    #[test]
    fn znorm_windows_are_normalised() {
        let x: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let seg = Segmenter::new(50, 25);
        let (w, slices) = znorm_windows(&x, &seg);
        assert_eq!(w.count(), slices.len());
        for s in &slices {
            assert!(tsops::stats::mean(s).abs() < 1e-9);
        }
    }

    #[test]
    fn znorm_windows_short_series_single_window() {
        let x = vec![1.0, 2.0, 3.0];
        let seg = Segmenter::new(50, 25);
        let (w, slices) = znorm_windows(&x, &seg);
        assert_eq!(w.count(), 1);
        assert_eq!(slices[0].len(), 3);
    }

    #[test]
    fn scatter_averages_overlaps() {
        let seg = Segmenter::new(4, 2);
        let w = seg.segment(8);
        // Windows at 0, 2, 4: point 2..4 covered twice, etc.
        let per_window = vec![vec![1.0; 4], vec![3.0; 4], vec![5.0; 4]];
        let s = scatter_pointwise(&w, &per_window, 8);
        assert_eq!(s[0], 1.0);
        assert_eq!(s[2], 2.0); // covered by windows at 0 and 2: (1+3)/2
        assert_eq!(s[4], 4.0); // covered by windows at 2 and 4: (3+5)/2
    }

    #[test]
    fn scatter_window_scalar() {
        let seg = Segmenter::new(3, 3);
        let w = seg.segment(6);
        let s = scatter_window_scores(&w, &[2.0, 4.0], 6);
        assert_eq!(s, vec![2.0, 2.0, 2.0, 4.0, 4.0, 4.0]);
    }
}
