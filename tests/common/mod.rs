//! Shared fixtures for the cross-crate integration tests.
//!
//! Each test binary compiles this module independently (`mod common;`), so
//! helpers here must not assume which subset a given test uses — hence the
//! file-level `dead_code` allowance.
//!
//! Two rules keep these tests honest and fast:
//!
//! * **No fixed sleeps for readiness.** Anything that waits for a server or
//!   a stream goes through a bounded poll ([`wait_until`], [`wait_for_seq`])
//!   that returns as soon as the condition holds and panics loudly at the
//!   deadline instead of hanging CI.
//! * **One source of truth for fixtures.** The quick training config, the
//!   archive-dataset lookup, and the ephemeral-server scaffolding live here
//!   so serve/stream/determinism tests can't drift apart.

#![allow(dead_code)]

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};
use triad_core::TriadConfig;
use triad_serve::{Client, ServeConfig, ServerHandle, Value};
use ucrgen::anomaly::AnomalyKind;
use ucrgen::archive::generate_dataset;
use ucrgen::UcrDataset;

/// Generous cap for client calls: the assertion deadline is the poll loop's,
/// not the socket's.
pub const CLIENT_TIMEOUT: Duration = Duration::from_secs(300);

/// Every anomaly kind the synthetic archive generates — the smoke matrix.
pub const KINDS: [AnomalyKind; 6] = [
    AnomalyKind::Noise,
    AnomalyKind::Duration,
    AnomalyKind::Seasonal,
    AnomalyKind::Trend,
    AnomalyKind::LevelShift,
    AnomalyKind::Contextual,
];

/// The quick training config the integration tests fit with: small enough
/// to train in seconds, big enough that detection works on archive data.
pub fn quick_cfg(seed: u64) -> TriadConfig {
    TriadConfig {
        epochs: 2,
        depth: 2,
        hidden: 8,
        batch: 4,
        merlin_step: 4,
        seed,
        ..Default::default()
    }
}

/// Find an archive dataset of a given anomaly kind.
pub fn dataset_of(kind: AnomalyKind) -> UcrDataset {
    (0..120)
        .map(|id| generate_dataset(3, id))
        .find(|d| d.kind == kind)
        .expect("kind present in archive")
}

/// An easy archive dataset: a level-shift event in a clean periodic signal.
pub fn easy_dataset() -> UcrDataset {
    dataset_of(AnomalyKind::LevelShift)
}

/// A fresh (removed, not yet created) temp dir namespaced by test + pid.
pub fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("triad_test_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Like [`tmp_dir`] but created, for servers that expect the dir to exist.
pub fn tmp_dir_created(tag: &str) -> PathBuf {
    let d = tmp_dir(tag);
    std::fs::create_dir_all(&d).expect("mkdir");
    d
}

/// Base config for an in-test server: ephemeral port, given model dir.
/// Tests override the rest with struct-update syntax.
pub fn ephemeral_serve_cfg(models: &Path) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".into(),
        models_dir: models.to_path_buf(),
        ..Default::default()
    }
}

/// Start a server and return the handle plus its bound address. `start`
/// only returns once the listener is bound, so no readiness sleep is
/// needed before connecting.
pub fn spawn_server(cfg: ServeConfig) -> (ServerHandle, String) {
    let handle = triad_serve::start(cfg).expect("server start");
    let addr = handle.addr().to_string();
    (handle, addr)
}

pub fn connect(addr: &str) -> Client {
    Client::connect(addr, CLIENT_TIMEOUT).expect("connect")
}

/// Bounded poll-until-ready: run `ready` every few milliseconds until it
/// returns true or `deadline` elapses. Replaces fixed sleeps so tests run
/// at condition speed and fail with `what` instead of hanging.
pub fn wait_until(what: &str, deadline: Duration, mut ready: impl FnMut() -> bool) {
    let start = Instant::now();
    loop {
        if ready() {
            return;
        }
        assert!(
            start.elapsed() < deadline,
            "timed out after {deadline:?} waiting for {what}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Poll a stream until its ingested sequence number reaches `want`;
/// returns the final status response.
pub fn wait_for_seq(ctl: &mut Client, stream: &str, want: u64) -> Value {
    let mut last = Value::Null;
    wait_until(
        &format!("stream {stream} to reach seq {want}"),
        Duration::from_secs(60),
        || {
            last = ctl.stream_poll(stream).expect("stream.poll");
            last.get("seq").and_then(Value::as_u64) >= Some(want)
        },
    );
    last
}

/// Push every chunk at full speed, resending whenever the shard queue sheds
/// it (explicit backpressure). Returns how many sends were shed at least
/// once.
pub fn push_with_retry(ctl: &mut Client, stream: &str, points: &[f64], chunk: usize) -> u64 {
    let mut resent = 0u64;
    for piece in points.chunks(chunk) {
        let mut tries = 0u32;
        loop {
            let resp = ctl.stream_push(stream, piece).expect("stream.push");
            if resp.get("queued").and_then(Value::as_bool) == Some(true) {
                break;
            }
            resent += 1;
            tries += 1;
            assert!(tries < 10_000, "shard queue for {stream} stayed full");
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    resent
}

/// Read a `u64` counter out of a `stats` response.
pub fn stat_counter(stats: &Value, key: &str) -> u64 {
    stats
        .get(key)
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("stats missing {key}: {stats}"))
}
