//! Random-segment selection shared by augmentations and anomaly injectors.

use rand::Rng;

/// Draw a random half-open segment `[start, start+len)` inside `0..total`,
/// with `len` uniform in `[min_len, max_len]` (clamped to fit).
///
/// Panics if `total == 0` or `min_len == 0`.
pub fn random_segment<R: Rng>(
    rng: &mut R,
    total: usize,
    min_len: usize,
    max_len: usize,
) -> std::ops::Range<usize> {
    assert!(total > 0, "cannot draw a segment from an empty range");
    assert!(min_len > 0, "segment length must be positive");
    let min_len = min_len.min(total);
    let max_len = max_len.clamp(min_len, total);
    let len = if min_len == max_len {
        min_len
    } else {
        rng.random_range(min_len..=max_len)
    };
    let start = if total == len {
        0
    } else {
        rng.random_range(0..=(total - len))
    };
    start..start + len
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn segment_fits_and_respects_lengths() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..500 {
            let r = random_segment(&mut rng, 100, 5, 30);
            assert!(r.end <= 100);
            assert!(r.len() >= 5 && r.len() <= 30);
        }
    }

    #[test]
    fn clamps_oversized_requests() {
        let mut rng = StdRng::seed_from_u64(2);
        let r = random_segment(&mut rng, 10, 20, 50);
        assert_eq!(r, 0..10);
    }

    #[test]
    fn exact_fit() {
        let mut rng = StdRng::seed_from_u64(2);
        let r = random_segment(&mut rng, 8, 8, 8);
        assert_eq!(r, 0..8);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_total_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        random_segment(&mut rng, 0, 1, 2);
    }
}
