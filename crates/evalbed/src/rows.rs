//! The append-only JSONL result format behind `--resume`.
//!
//! One line per completed (method, dataset) task. Each line carries its own
//! CRC-32 (the same polynomial as the TRIAD2 file trailer, via
//! [`triad_core::persist::crc32`]) so a crash mid-append — a torn final
//! line, a partially flushed buffer — is detected and *discarded* rather
//! than silently mis-parsed: a resumed run re-executes exactly the tasks
//! whose rows did not land intact, never double-counting the ones that did.
//!
//! Field exactness: every f64 is written with Rust's shortest round-trip
//! `Display` and read back with `str::parse::<f64>` (correctly rounded), so
//! a row that survives the CRC check reproduces its metric values
//! bit-for-bit. `crates/evalbed/tests/format.rs` proptests both properties.

use crate::metrics::{MetricSet, METRIC_NAMES};
use obs::json::{self, Json};
use std::collections::HashSet;
use std::io::Write;
use std::path::Path;
use triad_core::persist::crc32;

/// Bumped whenever the line schema (field set or metric column order)
/// changes; rows with a different version are ignored on load so a resume
/// never mixes schemas.
pub const SCHEMA_VERSION: u32 = 1;

/// One completed evaluation task.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultRow {
    pub method: String,
    pub dataset: usize,
    pub dataset_name: String,
    pub anomaly_kind: String,
    pub n_test: usize,
    pub metrics: MetricSet,
    /// Wall time of the task, milliseconds. Informational: excluded from
    /// the gated summary (it is machine-dependent), included in the CRC
    /// (it is part of this row's integrity).
    pub wall_ms: f64,
}

impl ResultRow {
    /// The resume key: a task re-runs iff no intact row carries its key.
    pub fn key(&self) -> (String, usize) {
        (self.method.clone(), self.dataset)
    }

    /// Serialize to one JSONL line (no trailing newline). The trailing
    /// `crc` field checksums every byte before it.
    pub fn to_line(&self) -> String {
        let mut body = String::with_capacity(256);
        body.push_str(&format!(
            "{{\"v\":{},\"method\":\"{}\",\"dataset\":{},\"name\":\"{}\",\"kind\":\"{}\",\"n_test\":{},\"m\":{{",
            SCHEMA_VERSION,
            escape(&self.method),
            self.dataset,
            escape(&self.dataset_name),
            escape(&self.anomaly_kind),
            self.n_test,
        ));
        for (i, (name, value)) in METRIC_NAMES.iter().zip(&self.metrics.values).enumerate() {
            if i > 0 {
                body.push(',');
            }
            body.push_str(&format!("\"{name}\":{}", fmt_f64(*value)));
        }
        body.push_str(&format!("}},\"wall_ms\":{}", fmt_f64(self.wall_ms)));
        let digest = crc32(body.as_bytes());
        format!("{body},\"crc\":\"{digest:08x}\"}}")
    }

    /// Parse one line, verifying its CRC and schema version. Any defect —
    /// truncation, bit damage, wrong version, missing field — is an `Err`
    /// so the loader can skip the row (and the resume logic re-run its
    /// task).
    pub fn parse_line(line: &str) -> Result<ResultRow, String> {
        let marker = ",\"crc\":\"";
        let at = line.rfind(marker).ok_or("missing crc field")?;
        let body = &line[..at];
        let tail = &line[at + marker.len()..];
        let hex = tail.strip_suffix("\"}").ok_or("malformed crc trailer")?;
        let stored = u32::from_str_radix(hex, 16).map_err(|e| format!("bad crc hex: {e}"))?;
        let computed = crc32(body.as_bytes());
        if stored != computed {
            return Err(format!(
                "crc mismatch (stored {stored:08x}, computed {computed:08x})"
            ));
        }
        // CRC holds: the body is exactly what was written; parse it as JSON
        // (re-closing the brace the crc trailer owned).
        let doc = json::parse(&format!("{body}}}")).map_err(|e| format!("bad row json: {e}"))?;
        let version = field_u64(&doc, "v")?;
        if version != SCHEMA_VERSION as u64 {
            return Err(format!(
                "schema version {version} (this build reads {SCHEMA_VERSION})"
            ));
        }
        let metrics_obj = doc.get("m").ok_or("missing metrics object")?;
        let mut values = [0.0f64; METRIC_NAMES.len()];
        for (slot, name) in values.iter_mut().zip(METRIC_NAMES.iter()) {
            *slot = metrics_obj
                .get(name)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("missing metric {name:?}"))?;
        }
        Ok(ResultRow {
            method: field_str(&doc, "method")?,
            dataset: field_u64(&doc, "dataset")? as usize,
            dataset_name: field_str(&doc, "name")?,
            anomaly_kind: field_str(&doc, "kind")?,
            n_test: field_u64(&doc, "n_test")? as usize,
            metrics: MetricSet { values },
            wall_ms: doc
                .get("wall_ms")
                .and_then(Json::as_f64)
                .ok_or("missing wall_ms")?,
        })
    }
}

fn field_str(doc: &Json, key: &str) -> Result<String, String> {
    doc.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing field {key:?}"))
}

fn field_u64(doc: &Json, key: &str) -> Result<u64, String> {
    doc.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing field {key:?}"))
}

/// Shortest round-trip encoding; non-finite values (never produced by sane
/// metrics, but the format must not emit unparseable JSON) degrade to 0.
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Everything a results file yielded: the intact rows (file order) plus the
/// count of lines that failed CRC/schema/parse and were skipped.
pub struct LoadedRows {
    pub rows: Vec<ResultRow>,
    pub skipped_lines: usize,
}

impl LoadedRows {
    /// Resume keys of the intact rows.
    pub fn keys(&self) -> HashSet<(String, usize)> {
        self.rows.iter().map(ResultRow::key).collect()
    }
}

/// Load a results file, skipping damaged lines (a missing file is just zero
/// rows). The final line of a crash-interrupted run is typically truncated
/// mid-record; its CRC cannot verify, so it lands in `skipped_lines` and
/// its task re-runs on resume.
pub fn load_rows(path: &Path) -> Result<LoadedRows, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(LoadedRows {
                rows: Vec::new(),
                skipped_lines: 0,
            })
        }
        Err(e) => return Err(format!("{}: {e}", path.display())),
    };
    let mut rows = Vec::new();
    let mut skipped = 0usize;
    let mut seen: HashSet<(String, usize)> = HashSet::new();
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match ResultRow::parse_line(line) {
            // First intact row per key wins; a duplicate (e.g. a re-run that
            // appended before being killed) is dropped so no task is ever
            // counted twice.
            Ok(row) if seen.insert(row.key()) => rows.push(row),
            Ok(_) => skipped += 1,
            Err(_) => skipped += 1,
        }
    }
    Ok(LoadedRows {
        rows,
        skipped_lines: skipped,
    })
}

/// Append rows (one fsync'd write call) to the results file, creating it if
/// needed. Called once per completed batch so a kill loses at most the
/// in-flight batch.
pub fn append_rows(path: &Path, rows: &[ResultRow]) -> Result<(), String> {
    if rows.is_empty() {
        return Ok(());
    }
    let mut buf = String::new();
    for row in rows {
        buf.push_str(&row.to_line());
        buf.push('\n');
    }
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| format!("{}: {e}", path.display()))?;
    f.write_all(buf.as_bytes())
        .map_err(|e| format!("{}: {e}", path.display()))?;
    f.sync_data()
        .map_err(|e| format!("{}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_row(method: &str, dataset: usize) -> ResultRow {
        let mut values = [0.0f64; METRIC_NAMES.len()];
        for (i, v) in values.iter_mut().enumerate() {
            *v = (i as f64 + 1.0) / 17.0;
        }
        ResultRow {
            method: method.to_string(),
            dataset,
            dataset_name: format!("{dataset:03}_sine_noise"),
            anomaly_kind: "Noise".to_string(),
            n_test: 640,
            metrics: MetricSet { values },
            wall_ms: 12.5,
        }
    }

    #[test]
    fn round_trips_exactly() {
        let row = sample_row("triad", 7);
        let line = row.to_line();
        let back = ResultRow::parse_line(&line).expect("parse");
        assert_eq!(back, row);
        // Bit-exact metric values, not just approximate.
        for (a, b) in row.metrics.values.iter().zip(&back.metrics.values) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn truncation_is_detected() {
        let line = sample_row("usad", 3).to_line();
        for cut in [1, line.len() / 2, line.len() - 1] {
            assert!(
                ResultRow::parse_line(&line[..cut]).is_err(),
                "cut at {cut} parsed"
            );
        }
    }

    #[test]
    fn bit_damage_is_detected() {
        let line = sample_row("usad", 3).to_line();
        let mut bytes = line.into_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] = if bytes[mid] == b'7' { b'8' } else { b'7' };
        let damaged = String::from_utf8(bytes).expect("ascii");
        assert!(ResultRow::parse_line(&damaged).is_err());
    }

    #[test]
    fn load_skips_torn_final_line_and_duplicates() {
        let dir = std::env::temp_dir().join(format!("evalbed_rows_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("results.jsonl");
        let a = sample_row("triad", 1);
        let b = sample_row("triad", 2);
        let torn = sample_row("triad", 3).to_line();
        let torn = &torn[..torn.len() - 9]; // lose the crc trailer
        let dup = sample_row("triad", 1); // duplicate key: must not double-count
        let text = format!(
            "{}\n{}\n{}\n{torn}",
            a.to_line(),
            dup.to_line(),
            b.to_line()
        );
        std::fs::write(&path, text).expect("write");
        let loaded = load_rows(&path).expect("load");
        assert_eq!(loaded.rows.len(), 2);
        assert_eq!(loaded.skipped_lines, 2); // the duplicate + the torn line
        let keys = loaded.keys();
        assert!(keys.contains(&("triad".to_string(), 1)));
        assert!(keys.contains(&("triad".to_string(), 2)));
        assert!(!keys.contains(&("triad".to_string(), 3)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_empty() {
        let loaded = load_rows(Path::new("/nonexistent/evalbed/results.jsonl")).expect("load");
        assert!(loaded.rows.is_empty());
        assert_eq!(loaded.skipped_lines, 0);
    }

    #[test]
    fn append_then_load() {
        let dir = std::env::temp_dir().join(format!("evalbed_append_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("results.jsonl");
        append_rows(&path, &[sample_row("a", 1), sample_row("b", 1)]).expect("append");
        append_rows(&path, &[sample_row("a", 2)]).expect("append");
        let loaded = load_rows(&path).expect("load");
        assert_eq!(loaded.rows.len(), 3);
        assert_eq!(loaded.skipped_lines, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn escaping_survives_hostile_names() {
        let mut row = sample_row("quo\"te", 9);
        row.dataset_name = "line\nbreak\tand\\slash".into();
        let back = ResultRow::parse_line(&row.to_line()).expect("parse");
        assert_eq!(back, row);
    }
}
