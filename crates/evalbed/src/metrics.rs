//! The metric bundle one evalbed task produces: every `evalkit` family
//! evaluated on one (method, dataset) pair.
//!
//! The bundle is a flat fixed-order vector of named f64 columns so the
//! engine, the JSONL rows, the summary aggregator and the CI gate all agree
//! on one schema without bespoke per-metric plumbing. `--metrics` filters
//! select columns by name; aggregation is a plain per-column mean.

/// Column names, in canonical order. This order is part of the JSONL and
/// summary schema: adding a column bumps [`crate::rows::SCHEMA_VERSION`].
pub const METRIC_NAMES: [&str; 16] = [
    "pw_p",
    "pw_r",
    "pw_f1",
    "pa_f1",
    "pak_p_auc",
    "pak_r_auc",
    "pak_f1_auc",
    "range_p",
    "range_r",
    "range_f1",
    "aff_p",
    "aff_r",
    "aff_f1",
    "roc_auc",
    "avg_prec",
    "event_hit",
];

/// The headline column: method ranking and the win/loss matrix use it.
/// PA%K F1-AUC is the paper's own headline (Table III).
pub const HEADLINE: &str = "pak_f1_auc";

/// One metric bundle: values aligned with [`METRIC_NAMES`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSet {
    pub values: [f64; METRIC_NAMES.len()],
}

impl MetricSet {
    /// Evaluate every family from raw scores plus binarised predictions.
    ///
    /// `scores` feed the threshold-free columns (ROC-AUC / average
    /// precision); `pred` feeds everything point/segment-based. All outputs
    /// are finite and in `[0, 1]` — `evalkit`'s degenerate-labeling
    /// conventions (no anomalies, all-anomalous, empty splits) are tested in
    /// `crates/evalkit/tests/degenerate.rs`.
    pub fn evaluate(scores: &[f64], pred: &[bool], labels: &[bool]) -> MetricSet {
        let pw = evalkit::pointwise::prf(pred, labels);
        let pa = evalkit::pa::prf_pa(pred, labels);
        let pak = evalkit::pak::pak_auc(pred, labels);
        let range = evalkit::range_pr::range_prf(pred, labels);
        let aff = evalkit::affiliation::affiliation_prf(pred, labels);
        let roc = evalkit::auc::roc_auc(scores, labels);
        let ap = evalkit::auc::average_precision(scores, labels);
        let event_hit = event_hit(pred, labels);
        MetricSet {
            values: [
                pw.precision,
                pw.recall,
                pw.f1,
                pa.f1,
                pak.precision_auc,
                pak.recall_auc,
                pak.f1_auc,
                range.precision,
                range.recall,
                range.f1,
                aff.precision,
                aff.recall,
                aff.f1,
                roc,
                ap,
                event_hit,
            ],
        }
    }

    /// Value of a named column (`None` for unknown names).
    pub fn get(&self, name: &str) -> Option<f64> {
        METRIC_NAMES
            .iter()
            .position(|&n| n == name)
            .map(|i| self.values[i])
    }

    /// All values are finite and within `[0, 1]` (every family is a
    /// probability-like quantity).
    pub fn is_sane(&self) -> bool {
        self.values
            .iter()
            .all(|v| v.is_finite() && (0.0..=1.0).contains(v))
    }
}

/// Event-wise hit under the MERLIN++ ±100-point protocol: 1.0 when the hull
/// of the positive predictions lands within the margin of *every* true
/// event (the archive has exactly one), else 0.0.
fn event_hit(pred: &[bool], labels: &[bool]) -> f64 {
    let events = evalkit::segments(labels);
    if events.is_empty() {
        return 0.0;
    }
    let first = pred.iter().position(|&b| b);
    let last = pred.iter().rposition(|&b| b);
    let (Some(first), Some(last)) = (first, last) else {
        return 0.0;
    };
    let hull = first..last + 1;
    let hits = events
        .iter()
        .filter(|ev| {
            evalkit::eventwise::event_detected(&hull, ev, evalkit::eventwise::DEFAULT_MARGIN)
        })
        .count();
    hits as f64 / events.len() as f64
}

/// Validate a `--metrics` filter: every requested name must be a known
/// column. An empty filter means "all columns".
pub fn validate_filter(filter: &[String]) -> Result<(), String> {
    for name in filter {
        if !METRIC_NAMES.contains(&name.as_str()) {
            return Err(format!(
                "unknown metric {name:?} (expected one of {METRIC_NAMES:?})"
            ));
        }
    }
    Ok(())
}

/// Does `name` pass the filter?
pub fn selected(filter: &[String], name: &str) -> bool {
    filter.is_empty() || filter.iter().any(|f| f == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluate_perfect_prediction() {
        let labels = vec![false, false, true, true, false];
        let scores = vec![0.0, 0.0, 1.0, 1.0, 0.0];
        let m = MetricSet::evaluate(&scores, &labels, &labels);
        assert!(m.is_sane());
        assert_eq!(m.get("pw_f1"), Some(1.0));
        assert_eq!(m.get("roc_auc"), Some(1.0));
        assert_eq!(m.get("event_hit"), Some(1.0));
        assert_eq!(m.get("bogus"), None);
    }

    #[test]
    fn evaluate_empty_prediction_is_sane() {
        let labels = vec![false, true, true, false];
        let pred = vec![false; 4];
        let scores = vec![0.0; 4];
        let m = MetricSet::evaluate(&scores, &pred, &labels);
        assert!(m.is_sane());
        assert_eq!(m.get("pw_f1"), Some(0.0));
        assert_eq!(m.get("event_hit"), Some(0.0));
    }

    #[test]
    fn event_hit_respects_margin() {
        let mut labels = vec![false; 400];
        for l in labels[200..210].iter_mut() {
            *l = true;
        }
        let mut near = vec![false; 400];
        near[150] = true; // within 100 points of the event
        let mut far = vec![false; 400];
        far[20] = true; // not within 100 points
        assert_eq!(event_hit(&near, &labels), 1.0);
        assert_eq!(event_hit(&far, &labels), 0.0);
    }

    #[test]
    fn filter_validation() {
        assert!(validate_filter(&["pw_f1".into(), "roc_auc".into()]).is_ok());
        assert!(validate_filter(&["nope".into()]).is_err());
        assert!(selected(&[], "pw_f1"));
        assert!(selected(&["pw_f1".into()], "pw_f1"));
        assert!(!selected(&["pw_f1".into()], "pa_f1"));
    }
}
