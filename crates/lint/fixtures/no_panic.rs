//@ path: crates/serve/src/fixture.rs
//@ expect: no-panic
// Seeded violations: aborting macros in library code.
pub fn admit(kind: u8) -> &'static str {
    match kind {
        0 => "fit",
        1 => "detect",
        _ => panic!("unknown request kind"),
    }
}

pub fn later() {
    todo!()
}
