//! Fig. 2 — an LSTM-AE's robustness works against it: a trained LSTM-AE
//! reconstructs a *continuous* anomalous sequence almost as well as normal
//! data, so reconstruction error barely separates them. Prints mean squared
//! error inside vs outside the anomaly and the full error series.

use baselines::lstm_ae::{LstmAe, LstmAeConfig};
use baselines::Detector;
use bench::{print_series, Args};
use ucrgen::anomaly::AnomalyKind;
use ucrgen::archive::generate_dataset;

fn main() {
    let args = Args::parse();
    let epochs: usize = args.get("epochs", 8);
    // Pick a dataset with a long, smooth (duration) anomaly — the paper's
    // failure case: the model happily reconstructs a continuous anomaly.
    let ds = (0..100)
        .map(|id| generate_dataset(7, id))
        .find(|d| d.kind == AnomalyKind::Duration && d.anomaly_len() > 60)
        .expect("archive contains duration anomalies");

    let scores = LstmAe::trained(LstmAeConfig {
        epochs,
        ..Default::default()
    })
    .score(ds.train(), ds.test());
    let anom = ds.anomaly_in_test();
    let inside: f64 = scores[anom.clone()].iter().sum::<f64>() / anom.len() as f64;
    let outside: f64 = scores
        .iter()
        .enumerate()
        .filter(|(i, _)| !anom.contains(i))
        .map(|(_, &v)| v)
        .sum::<f64>()
        / (scores.len() - anom.len()) as f64;
    println!(
        "# Fig. 2 — {}: anomaly {:?} ({} pts)",
        ds.name,
        anom,
        anom.len()
    );
    println!("# mean recon error inside anomaly  : {inside:.4}");
    println!("# mean recon error outside anomaly : {outside:.4}");
    println!(
        "# ratio: {:.2}x (close to 1 = the paper's failure mode)",
        inside / outside.max(1e-12)
    );

    let pts: Vec<(f64, f64)> = ds
        .test()
        .iter()
        .enumerate()
        .map(|(i, &v)| (i as f64, v))
        .collect();
    print_series("Fig2 test split", "t", "x", &pts);
    let err: Vec<(f64, f64)> = scores
        .iter()
        .enumerate()
        .map(|(i, &v)| (i as f64, v))
        .collect();
    print_series("Fig2 reconstruction error", "t", "sq_err", &err);
}
