//! Baseline detectors from TriAD's Table III, reimplemented on the `neuro`
//! substrate.
//!
//! The paper runs each baseline from its authors' source; we cannot, so each
//! is rebuilt around the *mechanism that determines its detection behaviour*
//! (DESIGN.md documents every simplification):
//!
//! | model | mechanism kept |
//! |---|---|
//! | [`lstm_ae`] | single-layer LSTM autoencoder, reconstruction error; random and trained variants (the Kim et al. benchmark pair) |
//! | [`usad`] | shared encoder + two decoders with adversarial two-objective training; blended reconstruction score |
//! | [`ts2vec_lite`] | dilated-conv timestamp representations trained with crop-overlap contrastive learning; distance-to-train scoring |
//! | [`anomaly_transformer_lite`] | self-attention reconstruction with Gaussian-prior association discrepancy weighting |
//! | [`mtgflow_lite`] | RealNVP normalizing-flow density over window features; low log-likelihood = anomaly |
//! | [`dcdetector_lite`] | dual-branch (patch-level vs point-level) attention representations; branch discrepancy as score |
//! | [`random`] | uniform random scores — the sanity floor |
//!
//! All detectors implement [`Detector`]: fit on the anomaly-free training
//! split, emit one anomaly score per test point. Thresholding and metrics
//! live in `evalkit`.

#![forbid(unsafe_code)]

pub mod anomaly_transformer_lite;
pub mod common;
pub mod dcdetector_lite;
pub mod lstm_ae;
pub mod mtgflow_lite;
pub mod random;
pub mod ts2vec_lite;
pub mod usad;

/// A point-scoring anomaly detector.
pub trait Detector {
    /// Display name (Table III row label).
    fn name(&self) -> String;

    /// Fit on the anomaly-free `train` split and return one anomaly score
    /// per point of `test` (higher = more anomalous).
    fn score(&mut self, train: &[f64], test: &[f64]) -> Vec<f64>;
}
