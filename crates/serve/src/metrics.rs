//! Lock-free observability: atomic counters and histograms.
//!
//! Every hot-path update is a single relaxed `AtomicU64` op — no locks, no
//! allocation — so instrumentation never serializes the worker pool. The
//! `stats` verb snapshots everything into JSON; [`Metrics::render_text`]
//! produces the plain-text dump.
//!
//! The histogram type is [`obs::Histogram`] (one shared implementation for
//! the whole workspace; the streaming layer's per-shard metrics use the
//! same type), which derives p50/p95/p99 estimates from its bucket counts;
//! both the JSON snapshot and the text exposition include those quantiles
//! alongside the raw buckets. The snapshot also surfaces the tracing
//! subsystem's span/drop tallies so a production `stats` call shows whether
//! (and how completely) tracing is recording.

use crate::json::Value;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

pub use obs::{Histogram, HistogramSnapshot};

/// JSON snapshot of one histogram: raw buckets (`le_*` / `inf`), count,
/// sum, mean, and bucket-derived p50/p95/p99.
pub fn histogram_json(h: &Histogram) -> Value {
    let s = h.snapshot();
    let mut fields: Vec<(String, Value)> = Vec::with_capacity(s.counts.len() + 6);
    for (i, &c) in s.counts.iter().enumerate() {
        let label = if i < s.bounds.len() {
            format!("le_{}", s.bounds[i])
        } else {
            "inf".to_string()
        };
        fields.push((label, Value::Num(c as f64)));
    }
    fields.push(("count".into(), Value::Num(s.total as f64)));
    fields.push(("sum".into(), Value::Num(s.sum as f64)));
    fields.push(("mean".into(), Value::Num(s.mean())));
    fields.push(("p50".into(), Value::Num(s.quantile(0.50))));
    fields.push(("p95".into(), Value::Num(s.quantile(0.95))));
    fields.push(("p99".into(), Value::Num(s.quantile(0.99))));
    Value::Obj(fields)
}

/// Text exposition of one histogram: `_count`/`_sum`, cumulative-style
/// buckets, and `_p50`/`_p95`/`_p99` gauges.
pub fn render_histogram(h: &Histogram, name: &str, unit: &str, out: &mut String) {
    use std::fmt::Write;
    let s = h.snapshot();
    let _ = writeln!(
        out,
        "{name}_count {count}\n{name}_sum{unit} {sum}",
        count = s.total,
        sum = s.sum,
    );
    for (i, &c) in s.counts.iter().enumerate() {
        let bound = if i < s.bounds.len() {
            format!("{}", s.bounds[i])
        } else {
            "+inf".to_string()
        };
        let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {c}");
    }
    for (q, label) in [(0.50, "p50"), (0.95, "p95"), (0.99, "p99")] {
        let _ = writeln!(out, "{name}_{label}{unit} {}", s.quantile(q));
    }
}

macro_rules! metrics_struct {
    ($($(#[$doc:meta])* $name:ident),* $(,)?) => {
        /// All serving counters; one instance shared by every layer.
        pub struct Metrics {
            $($(#[$doc])* pub $name: AtomicU64,)*
            /// Detect end-to-end latency (queue + batch + pipeline), µs.
            pub detect_latency_us: Histogram,
            /// Time a detect request waited before its batch ran, µs.
            pub queue_wait_us: Histogram,
            /// Fit latency, ms.
            pub fit_latency_ms: Histogram,
            /// Executed batch sizes (requests per batch).
            pub batch_size: Histogram,
            started: Instant,
        }

        impl Metrics {
            pub fn new() -> Self {
                Metrics {
                    $($name: AtomicU64::new(0),)*
                    detect_latency_us: Histogram::new(&[100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000]),
                    queue_wait_us: Histogram::new(&[100, 1_000, 10_000, 100_000, 1_000_000]),
                    fit_latency_ms: Histogram::new(&[10, 100, 1_000, 10_000, 60_000]),
                    batch_size: Histogram::new(&[1, 2, 4, 8, 16, 32]),
                    started: obs::now_instant(),
                }
            }

            /// Counter snapshot as JSON (the `stats` verb payload).
            pub fn to_json(&self) -> Value {
                let mut fields: Vec<(String, Value)> = vec![
                    $( (stringify!($name).to_string(),
                        // relaxed-ok: stats snapshot of independent counters.
                        Value::Num(self.$name.load(Ordering::Relaxed) as f64)), )*
                ];
                fields.push(("uptime_ms".into(),
                    Value::Num(self.started.elapsed().as_millis() as f64)));
                fields.push(("trace_enabled".into(), Value::Bool(obs::enabled())));
                fields.push(("trace_spans_recorded".into(),
                    Value::Num(obs::spans_recorded() as f64)));
                fields.push(("trace_spans_dropped".into(),
                    Value::Num(obs::spans_dropped() as f64)));
                for (name, h) in [
                    ("detect_latency_us", &self.detect_latency_us),
                    ("queue_wait_us", &self.queue_wait_us),
                    ("fit_latency_ms", &self.fit_latency_ms),
                    ("batch_size", &self.batch_size),
                ] {
                    fields.push((name.to_string(), histogram_json(h)));
                }
                Value::Obj(fields)
            }

            /// Plain-text dump (Prometheus-flavoured exposition format).
            pub fn render_text(&self) -> String {
                use std::fmt::Write;
                let mut out = String::new();
                $(
                    let _ = writeln!(
                        out,
                        "triad_{} {}",
                        stringify!($name),
                        // relaxed-ok: exposition snapshot of one counter.
                        self.$name.load(Ordering::Relaxed)
                    );
                )*
                let _ = writeln!(out, "triad_uptime_ms {}", self.started.elapsed().as_millis());
                let _ = writeln!(out, "triad_trace_enabled {}", obs::enabled() as u64);
                let _ = writeln!(out, "triad_trace_spans_recorded {}", obs::spans_recorded());
                let _ = writeln!(out, "triad_trace_spans_dropped {}", obs::spans_dropped());
                render_histogram(&self.detect_latency_us, "triad_detect_latency_us", "_us", &mut out);
                render_histogram(&self.queue_wait_us, "triad_queue_wait_us", "_us", &mut out);
                render_histogram(&self.fit_latency_ms, "triad_fit_latency_ms", "_ms", &mut out);
                render_histogram(&self.batch_size, "triad_batch_size", "", &mut out);
                out
            }
        }
    };
}

metrics_struct! {
    /// Accepted TCP connections.
    connections_total,
    /// Requests parsed off the wire (all verbs).
    requests_total,
    /// Responses written back (success or error).
    responses_total,
    /// Requests answered with `ok:false`.
    errors_total,
    /// `fit` requests served.
    fit_total,
    /// `detect` requests served.
    detect_total,
    /// `list` requests served.
    list_total,
    /// `evict` requests served.
    evict_total,
    /// `stats` requests served.
    stats_total,
    /// `health` requests served.
    health_total,
    /// `shutdown` requests served.
    shutdown_total,
    /// `stream.*` requests served (all stream verbs combined).
    stream_total,
    /// Detect answered from an already-deserialized model slot.
    cache_hits,
    /// Detect that had to deserialize the model from disk first.
    cache_misses,
    /// Deserialized models dropped by LRU pressure or `evict`.
    cache_evictions,
    /// Batches executed by the scheduling layer.
    batches_total,
    /// Detect requests that went through batches.
    batched_requests,
    /// Batches that grouped ≥ 2 concurrent requests.
    batches_multi,
    /// Within-batch duplicate payloads answered by a shared pipeline run.
    batch_dedup_hits,
    /// Detect requests that timed out before execution.
    timeouts_total,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

/// Convenience: relaxed increment.
pub fn inc(counter: &AtomicU64) {
    // relaxed-ok: counters are independent monotone tallies; nothing is
    // published through them, so no ordering is needed.
    counter.fetch_add(1, Ordering::Relaxed);
}

/// Convenience: relaxed read.
pub fn get(counter: &AtomicU64) -> u64 {
    // relaxed-ok: monitoring read; a stale value is acceptable.
    counter.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_mean() {
        let h = Histogram::new(&[10, 100, 1000]);
        for v in [5, 10, 11, 99, 5000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert!((h.mean() - (5 + 10 + 11 + 99 + 5000) as f64 / 5.0).abs() < 1e-9);
        let j = histogram_json(&h);
        assert_eq!(j.get("le_10").unwrap().as_u64(), Some(2));
        assert_eq!(j.get("le_100").unwrap().as_u64(), Some(2));
        assert_eq!(j.get("le_1000").unwrap().as_u64(), Some(0));
        assert_eq!(j.get("inf").unwrap().as_u64(), Some(1));
        // Quantiles ride along: p50 falls in the (10, 100] bucket.
        let p50 = j.get("p50").unwrap().as_f64().unwrap();
        assert!(p50 > 10.0 && p50 <= 100.0, "p50 {p50}");
        // Overflow bucket reports the last finite bound.
        assert_eq!(j.get("p99").unwrap().as_f64(), Some(1000.0));
    }

    #[test]
    fn metrics_snapshot_and_text() {
        let m = Metrics::new();
        inc(&m.requests_total);
        inc(&m.requests_total);
        inc(&m.cache_hits);
        m.batch_size.observe(3);
        let j = m.to_json();
        assert_eq!(j.get("requests_total").unwrap().as_u64(), Some(2));
        assert_eq!(j.get("cache_hits").unwrap().as_u64(), Some(1));
        assert!(j.get("uptime_ms").unwrap().as_f64().unwrap() >= 0.0);
        assert!(j.get("batch_size").unwrap().get("p95").is_some());
        let text = m.render_text();
        assert!(text.contains("triad_requests_total 2"), "{text}");
        assert!(
            text.contains("triad_batch_size_bucket{le=\"4\"} 1"),
            "{text}"
        );
        assert!(text.contains("triad_batch_size_p99"), "{text}");
        assert!(text.contains("triad_detect_latency_us_p50_us"), "{text}");
    }

    #[test]
    fn concurrent_updates_are_lossless() {
        let m = std::sync::Arc::new(Metrics::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = std::sync::Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..1000 {
                        inc(&m.detect_total);
                        m.detect_latency_us.observe(42);
                    }
                });
            }
        });
        assert_eq!(get(&m.detect_total), 8000);
        assert_eq!(m.detect_latency_us.count(), 8000);
    }
}
