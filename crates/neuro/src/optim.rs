//! First-order optimizers over [`Param`] collections.

use crate::graph::Param;
use crate::tensor::Tensor;

/// Clip the global L2 norm of all accumulated gradients to `max_norm`.
/// Returns the pre-clip norm. Call between `backward` and `step` — standard
/// protection against the occasional exploding contrastive batch.
pub fn clip_grad_norm(params: &[Param], max_norm: f32) -> f32 {
    assert!(max_norm > 0.0, "max_norm must be positive");
    let mut total = 0.0f32;
    for p in params {
        let pd = p.value();
        total += pd.grad.data().iter().map(|g| g * g).sum::<f32>();
    }
    let norm = total.sqrt();
    if norm > max_norm && norm.is_finite() {
        let scale = max_norm / norm;
        for p in params {
            for g in p.borrow_mut().grad.data_mut() {
                *g *= scale;
            }
        }
    }
    norm
}

/// Cosine learning-rate schedule from `lr_max` down to `lr_min` over
/// `total_steps` (held at `lr_min` afterwards).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CosineSchedule {
    pub lr_max: f32,
    pub lr_min: f32,
    pub total_steps: u64,
}

impl CosineSchedule {
    pub fn new(lr_max: f32, lr_min: f32, total_steps: u64) -> Self {
        assert!(lr_max >= lr_min && lr_min >= 0.0 && total_steps > 0);
        CosineSchedule {
            lr_max,
            lr_min,
            total_steps,
        }
    }

    /// Learning rate at step `t` (0-based).
    pub fn at(&self, t: u64) -> f32 {
        if t >= self.total_steps {
            return self.lr_min;
        }
        // lint-allow(lossy-cast): step counts stay far below 2^24 in any
        // training run here, so both casts are exact in f32.
        let progress = t as f32 / self.total_steps as f32;
        self.lr_min
            + 0.5 * (self.lr_max - self.lr_min) * (1.0 + (std::f32::consts::PI * progress).cos())
    }
}

/// Adam (Kingma & Ba). The paper trains with lr = 0.001 — Adam's default —
/// for 20 epochs (Sec. IV-A3).
pub struct Adam {
    params: Vec<Param>,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
    t: u64,
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
}

impl Adam {
    pub fn new(params: Vec<Param>, lr: f32) -> Self {
        let m = params.iter().map(|p| Tensor::zeros(&p.shape())).collect();
        let v = params.iter().map(|p| Tensor::zeros(&p.shape())).collect();
        Adam {
            params,
            m,
            v,
            t: 0,
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }

    pub fn params(&self) -> &[Param] {
        &self.params
    }

    /// Apply one update from the gradients accumulated since the last `step`,
    /// then zero them.
    pub fn step(&mut self) {
        self.t += 1;
        // lint-allow(lossy-cast): the step counter stays far below i32::MAX
        // over any training run, and `powi` takes i32.
        let t = self.t as i32;
        let bc1 = 1.0 - self.beta1.powi(t);
        let bc2 = 1.0 - self.beta2.powi(t);
        for (i, p) in self.params.iter().enumerate() {
            let mut pd = p.borrow_mut();
            let m = self.m[i].data_mut();
            let v = self.v[i].data_mut();
            // Split borrow: copy grads out is avoidable — iterate by index.
            for j in 0..m.len() {
                let g = pd.grad.data()[j];
                m[j] = self.beta1 * m[j] + (1.0 - self.beta1) * g;
                v[j] = self.beta2 * v[j] + (1.0 - self.beta2) * g * g;
                let mhat = m[j] / bc1;
                let vhat = v[j] / bc2;
                pd.value.data_mut()[j] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
            pd.grad.zero_();
        }
    }

    /// Zero all gradients without updating (e.g. after a diverged batch).
    pub fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }
}

/// Plain SGD with optional momentum — used by tests and ablations that need
/// an optimizer with no adaptive state.
pub struct Sgd {
    params: Vec<Param>,
    velocity: Vec<Tensor>,
    pub lr: f32,
    pub momentum: f32,
}

impl Sgd {
    pub fn new(params: Vec<Param>, lr: f32, momentum: f32) -> Self {
        let velocity = params.iter().map(|p| Tensor::zeros(&p.shape())).collect();
        Sgd {
            params,
            velocity,
            lr,
            momentum,
        }
    }

    pub fn step(&mut self) {
        for (i, p) in self.params.iter().enumerate() {
            let mut pd = p.borrow_mut();
            let vel = self.velocity[i].data_mut();
            for j in 0..vel.len() {
                let g = pd.grad.data()[j];
                vel[j] = self.momentum * vel[j] + g;
                pd.value.data_mut()[j] -= self.lr * vel[j];
            }
            pd.grad.zero_();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    /// Minimise (p − 3)² and check convergence.
    fn quadratic_loss(p: &Param) -> f32 {
        let mut g = Graph::new();
        let pid = g.param(p);
        let target = g.input(Tensor::scalar(3.0));
        let d = g.sub(pid, target);
        let sq = g.square(d);
        let l = g.sum_all(sq);
        let v = g.value(l).item();
        g.backward(l);
        v
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let p = Param::new(Tensor::scalar(-5.0));
        let mut opt = Adam::new(vec![p.clone()], 0.1);
        for _ in 0..300 {
            quadratic_loss(&p);
            opt.step();
        }
        assert!((p.tensor().item() - 3.0).abs() < 1e-2);
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let p = Param::new(Tensor::scalar(10.0));
        let mut opt = Sgd::new(vec![p.clone()], 0.05, 0.9);
        for _ in 0..200 {
            quadratic_loss(&p);
            opt.step();
        }
        assert!((p.tensor().item() - 3.0).abs() < 1e-2);
    }

    #[test]
    fn step_zeroes_gradients() {
        let p = Param::new(Tensor::scalar(1.0));
        let mut opt = Adam::new(vec![p.clone()], 0.01);
        quadratic_loss(&p);
        assert!(p.value().grad.item() != 0.0);
        opt.step();
        assert_eq!(p.value().grad.item(), 0.0);
    }

    #[test]
    fn clip_grad_norm_scales_down_only_when_needed() {
        let p = Param::new(Tensor::from_vec(&[2], vec![0.0, 0.0]));
        p.borrow_mut().grad = Tensor::from_vec(&[2], vec![3.0, 4.0]);
        let norm = clip_grad_norm(&[p.clone()], 1.0);
        assert!((norm - 5.0).abs() < 1e-6);
        let g = p.value().grad.clone();
        assert!((g.data()[0] - 0.6).abs() < 1e-6);
        assert!((g.data()[1] - 0.8).abs() < 1e-6);
        // Below the bound: untouched.
        let norm = clip_grad_norm(&[p.clone()], 10.0);
        assert!((norm - 1.0).abs() < 1e-6);
        assert!((p.value().grad.data()[0] - 0.6).abs() < 1e-6);
    }

    #[test]
    fn cosine_schedule_endpoints_and_monotonicity() {
        let s = CosineSchedule::new(1.0, 0.1, 100);
        assert!((s.at(0) - 1.0).abs() < 1e-6);
        assert!((s.at(100) - 0.1).abs() < 1e-6);
        assert!((s.at(1000) - 0.1).abs() < 1e-6);
        let mut last = f32::INFINITY;
        for t in 0..=100 {
            let lr = s.at(t);
            assert!(lr <= last + 1e-6);
            last = lr;
        }
        // Midpoint is the arithmetic mean.
        assert!((s.at(50) - 0.55).abs() < 1e-3);
    }

    #[test]
    fn adam_loss_decreases_monotonically_early() {
        let p = Param::new(Tensor::scalar(0.0));
        let mut opt = Adam::new(vec![p.clone()], 0.05);
        let mut last = f32::INFINITY;
        for _ in 0..20 {
            let l = quadratic_loss(&p);
            assert!(l <= last + 1e-4, "loss went up: {last} -> {l}");
            last = l;
            opt.step();
        }
    }
}
