//! Exact-order reduction helpers — the sanctioned way to fold floats.
//!
//! Rule 3 of the determinism contract (see the crate docs) says combinators
//! only *map*; every floating-point reduction happens at the call site in a
//! fixed serial order. These helpers are that order, written down once and
//! given a name, so the `float-reduce-order` lint can tell a deliberate,
//! reproducible fold from an accidental one: an ad-hoc `.sum()` / `.fold()`
//! / `+=` inside a `parallel::map_*` closure is flagged; routing the same
//! arithmetic through this module is the fix.
//!
//! Every helper is a strict left fold over the iterator/slice order — the
//! exact sequence of floating-point operations is a pure function of the
//! input order, never of thread count or scheduling. Nothing here is
//! parallel, and nothing here may ever become parallel without a
//! tolerance-gated `fast` mode (ROADMAP item 1).

/// Left-to-right sum of `f64` terms in iteration order.
///
/// Bit-identical to `iter.fold(0.0, |a, x| a + x)`; the name is the
/// contract — this order is load-bearing and must not be re-associated.
pub fn sum_in_order(it: impl Iterator<Item = f64>) -> f64 {
    it.fold(0.0f64, |acc, x| acc + x)
}

/// Left-to-right sum of `f32` terms in iteration order.
pub fn sum_f32_in_order(it: impl Iterator<Item = f32>) -> f32 {
    it.fold(0.0f32, |acc, x| acc + x)
}

/// Left fold in iteration order; the float analogue of `Iterator::fold`
/// with the order promise spelled out.
pub fn fold_in_order<T, A>(it: impl Iterator<Item = T>, init: A, f: impl FnMut(A, T) -> A) -> A {
    it.fold(init, f)
}

/// Dot product of two `f32` rows accumulated in `f64`, left to right.
///
/// This is the embedding-similarity kernel's inner reduction: each product
/// is widened to `f64` before the add, and terms accumulate strictly in
/// index order, so the result is independent of thread count.
pub fn dot_f32_in_order(a: &[f32], b: &[f32]) -> f64 {
    a.iter()
        .zip(b)
        .fold(0.0f64, |acc, (x, y)| acc + (*x as f64) * (*y as f64))
}

/// Minimum under IEEE total order (`f64::total_cmp`), in iteration order.
/// Exactly associative: any grouping gives the same answer, NaNs included.
pub fn min_in_order(it: impl Iterator<Item = f64>) -> Option<f64> {
    it.reduce(|a, b| if b.total_cmp(&a).is_lt() { b } else { a })
}

/// Maximum under IEEE total order (`f64::total_cmp`), in iteration order.
pub fn max_in_order(it: impl Iterator<Item = f64>) -> Option<f64> {
    it.reduce(|a, b| if b.total_cmp(&a).is_gt() { b } else { a })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_matches_serial_left_fold_bitwise() {
        let xs = [0.1f64, 0.2, 0.7, 1e-9, -0.3, 4.5e7];
        let serial = xs.iter().copied().fold(0.0f64, |a, x| a + x);
        assert_eq!(sum_in_order(xs.iter().copied()).to_bits(), serial.to_bits());
        let f = [0.5f32, 1.25, -0.125];
        let serial32 = f.iter().copied().fold(0.0f32, |a, x| a + x);
        assert_eq!(
            sum_f32_in_order(f.iter().copied()).to_bits(),
            serial32.to_bits()
        );
    }

    #[test]
    fn dot_matches_widened_serial_loop() {
        let a = [0.5f32, -1.5, 2.25, 0.875];
        let b = [1.0f32, 0.25, -0.5, 3.0];
        let mut serial = 0.0f64;
        for i in 0..a.len() {
            serial += (a[i] as f64) * (b[i] as f64);
        }
        assert_eq!(dot_f32_in_order(&a, &b).to_bits(), serial.to_bits());
    }

    #[test]
    fn min_max_are_nan_total() {
        let xs = [1.0f64, f64::NAN, -2.0];
        // total order puts NaN above every number, so min ignores it and
        // max selects it — deterministically.
        assert_eq!(min_in_order(xs.iter().copied()), Some(-2.0));
        assert!(max_in_order(xs.iter().copied()).is_some_and(|v| v.is_nan()));
        assert_eq!(min_in_order(std::iter::empty()), None);
    }

    #[test]
    fn fold_in_order_is_plain_left_fold() {
        let got = fold_in_order([1.0f64, 2.0, 4.0].into_iter(), 10.0, |a, x| a * 2.0 + x);
        assert_eq!(got, ((10.0 * 2.0 + 1.0) * 2.0 + 2.0) * 2.0 + 4.0);
    }
}
